"""DAG-redundancy experiment: clone vs speculate vs checkpoint under failures.

The stage-DAG job model (multi-round chains, fan-out/fan-in diamonds) and
the ``checkpoint`` redundancy policy open a design axis the paper's
two-phase model could not express: when machines fail mid-DAG, is it
better to race redundant copies (``clone``), duplicate detected stragglers
(``late``), or checkpoint partial work so the replacement copy resumes
instead of restarting (``checkpoint``)?  This driver sweeps those
redundancy policies -- under a fixed SRPT+greedy base -- across
failure-heavy scenarios on the two DAG stream workloads, and reports mean
flowtimes plus the checkpoint accounting (resumes, work saved).  The sweep
itself is the ``dag-redundancy`` :class:`~repro.study.core.Study` preset,
so spec files and the results cache apply unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.experiments.config import ExperimentConfig
from repro.experiments.report import render_columns

__all__ = [
    "DagRedundancyResult",
    "run_dag_redundancy",
    "DEFAULT_REDUNDANCIES",
    "DEFAULT_DAG_WORKLOADS",
    "DEFAULT_FAILURE_SCENARIOS",
    "BASELINE_REDUNDANCY",
]

#: The redundancy axis of the sweep: the no-redundancy baseline, the
#: paper's cloning, LATE speculation, and opportunistic checkpointing,
#: each composed over the same SRPT ordering + greedy allocation so the
#: redundancy policy is the only varying factor.
DEFAULT_REDUNDANCIES: Tuple[str, ...] = ("none", "clone", "late", "checkpoint")

#: The baseline the checkpoint verdict is measured against.
BASELINE_REDUNDANCY = "none"

#: The two DAG stream workloads (labelled knob tables over
#: :data:`repro.study.core.STREAM_FACTORIES`): a 3-round shuffle chain and
#: a fan-out/fan-in diamond, both small enough for smoke-scale goldens.
DEFAULT_DAG_WORKLOADS: Tuple[Tuple[str, Dict[str, object]], ...] = (
    (
        "chain",
        {
            "kind": "stream",
            "factory": "dag_chain",
            "num_jobs": 20,
            "num_rounds": 3,
            "arrival_rate": 0.05,
            "mean_tasks_per_round": 3.0,
            "mean_duration": 15.0,
            "cv": 0.3,
            "seed": 1,
        },
    ),
    (
        "diamond",
        {
            "kind": "stream",
            "factory": "dag_diamond",
            "num_jobs": 20,
            "fan_out": 3,
            "arrival_rate": 0.05,
            "mean_tasks_per_branch": 2.0,
            "mean_duration": 15.0,
            "cv": 0.3,
            "seed": 2,
        },
    ),
)

#: The failure-heavy scenario axis (knob tables, spec-file serialisable).
DEFAULT_FAILURE_SCENARIOS: Tuple[Tuple[str, Dict[str, float]], ...] = (
    ("fail-lo", {"failure_rate": 0.002, "mean_repair": 10.0}),
    ("fail-hi", {"failure_rate": 0.01, "mean_repair": 10.0}),
)

#: Cluster size of the sweep (fixed: the DAG workloads do not scale with
#: the google-trace ``scale`` knob).  Large enough that LATE's speculative
#: cap (10% of the cluster) rounds to at least one machine.
DEFAULT_DAG_MACHINES = 12


def composition_of(redundancy: str) -> str:
    """The scheduler-axis triple a redundancy policy runs as."""
    return f"srpt+greedy+{redundancy}"


@dataclass(frozen=True)
class DagRedundancyResult:
    """Per-scenario, per-workload flowtimes of every redundancy policy."""

    scenarios: Tuple[str, ...]
    workloads: Tuple[str, ...]
    redundancies: Tuple[str, ...]
    baseline: str
    #: ``mean_flowtimes[scenario][workload][redundancy]``.
    mean_flowtimes: Dict[str, Dict[str, Dict[str, float]]]
    #: ``failure_kills[scenario][redundancy]`` -- replication-mean copies
    #: killed by machine failures, summed over workloads.
    failure_kills: Dict[str, Dict[str, float]]
    #: ``checkpoint_resumes[scenario][redundancy]`` -- replication-mean
    #: checkpoint resumes, summed over workloads (non-zero only for the
    #: ``checkpoint`` policy).
    checkpoint_resumes: Dict[str, Dict[str, float]]
    #: ``work_saved[scenario][redundancy]`` -- replication-mean raw work
    #: recovered from checkpoints, summed over workloads.
    work_saved: Dict[str, Dict[str, float]]

    def advantage(self, scenario: str, workload: str, redundancy: str) -> float:
        """Percent mean-flowtime reduction of ``redundancy`` vs the baseline."""
        baseline = self.mean_flowtimes[scenario][workload][self.baseline]
        value = self.mean_flowtimes[scenario][workload][redundancy]
        return 100.0 * (baseline - value) / baseline

    def render(self) -> str:
        """Human-readable report of this experiment's results."""
        blocks: List[str] = []
        for scenario in self.scenarios:
            series: Dict[str, Sequence[float]] = {}
            for workload in self.workloads:
                series[f"{workload} flowtime"] = [
                    self.mean_flowtimes[scenario][workload][name]
                    for name in self.redundancies
                ]
                series[f"{workload} vs none (%)"] = [
                    self.advantage(scenario, workload, name)
                    for name in self.redundancies
                ]
            series["failure kills"] = [
                self.failure_kills[scenario][name] for name in self.redundancies
            ]
            series["ckpt resumes"] = [
                self.checkpoint_resumes[scenario][name]
                for name in self.redundancies
            ]
            series["work saved"] = [
                self.work_saved[scenario][name] for name in self.redundancies
            ]
            table = render_columns(
                "redundancy",
                list(self.redundancies),
                series,
                title=f"DAG redundancy -- scenario: {scenario}",
                precision=1,
                column_width=18,
                x_width=14,
            )
            winners = [
                name
                for name in self.redundancies
                if name != self.baseline
                and all(
                    self.mean_flowtimes[scenario][w][name]
                    < self.mean_flowtimes[scenario][w][self.baseline]
                    for w in self.workloads
                )
            ]
            verdict = (
                "beats none on every workload: " + ", ".join(winners)
                if winners
                else "beats none on every workload: (none)"
            )
            blocks.append(table + "\n" + verdict)
        footer = (
            "redundancy policy composed as srpt+greedy+<redundancy> "
            "(repro.policies); vs none (%) = mean-flowtime reduction "
            "relative to the single-copy baseline, positive is better; "
            "work saved = raw work recovered from checkpoints after "
            "failure kills"
        )
        blocks.append(footer)
        return "\n\n".join(blocks)


def run_dag_redundancy(
    config: Optional[ExperimentConfig] = None,
    *,
    redundancies: Sequence[str] = DEFAULT_REDUNDANCIES,
    scenarios: Sequence[Tuple[str, Dict[str, float]]] = DEFAULT_FAILURE_SCENARIOS,
    workloads: Sequence[Tuple[str, Dict[str, object]]] = DEFAULT_DAG_WORKLOADS,
) -> DagRedundancyResult:
    """Sweep redundancy policies over DAG workloads under failure scenarios.

    A thin wrapper over the ``dag-redundancy``
    :class:`~repro.study.core.Study` preset (:mod:`repro.study.presets`):
    one axes product of ``redundancies x workloads x scenarios x seeds``
    through a single :meth:`~repro.study.core.Study.run` call, so
    ``config.workers`` and the results cache apply with bit-identical
    results.
    """
    from repro.study.presets import compute_dag_redundancy

    config = config if config is not None else ExperimentConfig.default_bench()
    if not redundancies:
        raise ValueError("at least one redundancy policy is required")
    if not scenarios:
        raise ValueError("at least one scenario is required")
    if not workloads:
        raise ValueError("at least one workload is required")
    return compute_dag_redundancy(
        config,
        redundancies=tuple(redundancies),
        scenarios=tuple(scenarios),
        workloads=tuple(workloads),
    )
