"""Figure 4 -- CDF of job flowtime in the small-job range (0-300 s).

The paper plots the cumulative fraction of jobs completing within 0-300 s
for SRPTMS+C, SCA and Mantri.  SRPTMS+C is the best of the three: more than
50% of jobs finish within 100 s, against roughly 46% (SCA) and 44% (Mantri).
The shape to reproduce is the ordering SRPTMS+C >= SCA >= Mantri across the
small-job range.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from repro.analysis.cdf import SMALL_JOB_GRID, cdf_comparison, render_cdf_table
from repro.experiments.baselines import run_scheduler_comparison
from repro.experiments.config import ExperimentConfig
from repro.simulation.experiment_runner import ReplicatedResult

__all__ = ["Figure4Result", "run_figure4"]


@dataclass(frozen=True)
class Figure4Result:
    """Small-job flowtime CDFs per scheduler."""

    points: Tuple[float, ...]
    curves: Dict[str, Tuple[float, ...]]

    def fraction_within(self, scheduler: str, limit: float) -> float:
        """CDF value of ``scheduler`` at the grid point ``limit``."""
        points = np.asarray(self.points)
        index = int(np.argmin(np.abs(points - limit)))
        return self.curves[scheduler][index]

    def render(self) -> str:
        """Human-readable report of this experiment's results."""
        table = render_cdf_table(
            {name: list(values) for name, values in self.curves.items()},
            list(self.points),
            title="Figure 4 -- CDF of job flowtime, small-job range (0-300 s)",
        )
        at_100 = {
            name: self.fraction_within(name, 100.0) for name in self.curves
        }
        summary = "  ".join(f"{name}: {value:.1%}" for name, value in at_100.items())
        return table + f"\nfraction of jobs completing within 100 s -- {summary}"


def run_figure4(
    config: Optional[ExperimentConfig] = None,
    *,
    results: Optional[Dict[str, ReplicatedResult]] = None,
) -> Figure4Result:
    """Compute the Figure 4 CDFs (reusing ``results`` when supplied)."""
    config = config if config is not None else ExperimentConfig.default_bench()
    if results is None:
        results = run_scheduler_comparison(config)
    curves = cdf_comparison(results, SMALL_JOB_GRID)
    return Figure4Result(
        points=tuple(SMALL_JOB_GRID),
        curves={name: tuple(curve.tolist()) for name, curve in curves.items()},
    )
