"""Figure 5 -- CDF of job flowtime in the big-job range (0-4000 s).

Same comparison as Figure 4 but over the 0-4000 s range that covers the big
jobs.  The paper reports that SRPTMS+C remains the best policy: about 90% of
jobs complete within 1000 s, against roughly 88% (SCA) and 86% (Mantri).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from repro.analysis.cdf import BIG_JOB_GRID, cdf_comparison, render_cdf_table
from repro.experiments.baselines import run_scheduler_comparison
from repro.experiments.config import ExperimentConfig
from repro.simulation.experiment_runner import ReplicatedResult

__all__ = ["Figure5Result", "run_figure5"]


@dataclass(frozen=True)
class Figure5Result:
    """Big-job flowtime CDFs per scheduler."""

    points: Tuple[float, ...]
    curves: Dict[str, Tuple[float, ...]]

    def fraction_within(self, scheduler: str, limit: float) -> float:
        """CDF value of ``scheduler`` at the grid point ``limit``."""
        points = np.asarray(self.points)
        index = int(np.argmin(np.abs(points - limit)))
        return self.curves[scheduler][index]

    def render(self) -> str:
        """Human-readable report of this experiment's results."""
        table = render_cdf_table(
            {name: list(values) for name, values in self.curves.items()},
            list(self.points),
            title="Figure 5 -- CDF of job flowtime, big-job range (0-4000 s)",
        )
        at_1000 = {
            name: self.fraction_within(name, 1000.0) for name in self.curves
        }
        summary = "  ".join(f"{name}: {value:.1%}" for name, value in at_1000.items())
        return table + f"\nfraction of jobs completing within 1000 s -- {summary}"


def run_figure5(
    config: Optional[ExperimentConfig] = None,
    *,
    results: Optional[Dict[str, ReplicatedResult]] = None,
) -> Figure5Result:
    """Compute the Figure 5 CDFs (reusing ``results`` when supplied)."""
    config = config if config is not None else ExperimentConfig.default_bench()
    if results is None:
        results = run_scheduler_comparison(config)
    curves = cdf_comparison(results, BIG_JOB_GRID)
    return Figure5Result(
        points=tuple(BIG_JOB_GRID),
        curves={name: tuple(curve.tolist()) for name, curve in curves.items()},
    )
