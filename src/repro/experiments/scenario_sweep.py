"""Heterogeneity/failure sweep: how cloning's advantage grows with adversity.

The paper evaluates cloning on a homogeneous, failure-free cluster; its
premise, however, is that stragglers come from machine-level trouble.  This
driver sweeps two adversity axes of the scenario subsystem
(:mod:`repro.scenarios`):

* **speed variance** -- machines drawn from ``UniformSpeeds(1-s, 1+s)``
  with the empirical mean normalised to 1, so total cluster capacity is
  constant and only the *spread* grows;
* **failure rate** -- a per-machine fail/repair process that kills resident
  copies (re-dispatched by the scheduler) at increasing rates.

For every sweep point the cloning policy (SCA) runs against the
detection/fairness baselines (LATE, Mantri, Fair) on the same trace and
seeds through :class:`~repro.simulation.experiment_runner.ExperimentRunner`,
and the report shows SCA's mean-flowtime advantage over the *best* baseline
widening as variance and failure rate rise -- proactive redundancy beats
reactive speculation precisely when machines misbehave.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.experiments.config import ExperimentConfig
from repro.experiments.report import render_sweep_table
from repro.scenarios import DEFAULT_MEAN_REPAIR

__all__ = [
    "ScenarioSweepResult",
    "run_scenario_sweep",
    "DEFAULT_SPEED_SPREADS",
    "DEFAULT_FAILURE_RATES",
]

#: Half-widths ``s`` of the ``UniformSpeeds(1-s, 1+s)`` heterogeneity axis.
DEFAULT_SPEED_SPREADS: Tuple[float, ...] = (0.0, 0.25, 0.5, 0.75)

#: Per-machine failure rates (events per simulated second) of the failure
#: axis.  Scaled to the synthetic Google trace, whose tasks average ~640 s:
#: the top rate (mean uptime ~3300 s) already kills roughly a fifth of task
#: executions.  Rates approaching ``1 / mean task duration`` make task
#: completion itself improbable and blow the makespan up -- interesting
#: physics, wrong default.
DEFAULT_FAILURE_RATES: Tuple[float, ...] = (0.0, 2e-5, 1e-4, 3e-4)

#: The cloning policy under study.
_CLONING = "SCA"


@dataclass(frozen=True)
class ScenarioSweepResult:
    """Mean flowtime per scheduler along both adversity axes."""

    speed_spreads: Tuple[float, ...]
    failure_rates: Tuple[float, ...]
    schedulers: Tuple[str, ...]
    #: ``hetero_flowtimes[name][i]`` -- mean flowtime of ``name`` at spread i.
    hetero_flowtimes: Dict[str, Tuple[float, ...]]
    #: ``failure_flowtimes[name][i]`` -- mean flowtime of ``name`` at rate i.
    failure_flowtimes: Dict[str, Tuple[float, ...]]
    mean_repair: float

    def _advantages(self, flowtimes: Dict[str, Tuple[float, ...]]) -> List[float]:
        """Percent flowtime reduction of SCA vs the best baseline per point."""
        baselines = [name for name in self.schedulers if name != _CLONING]
        advantages: List[float] = []
        for index in range(len(flowtimes[_CLONING])):
            best = min(flowtimes[name][index] for name in baselines)
            advantages.append(100.0 * (best - flowtimes[_CLONING][index]) / best)
        return advantages

    @property
    def hetero_advantages(self) -> List[float]:
        """SCA's advantage (% vs best baseline) along the heterogeneity axis."""
        return self._advantages(self.hetero_flowtimes)

    @property
    def failure_advantages(self) -> List[float]:
        """SCA's advantage (% vs best baseline) along the failure axis."""
        return self._advantages(self.failure_flowtimes)

    def render(self) -> str:
        """Human-readable report of this experiment's results."""
        hetero_series: Dict[str, Sequence[float]] = {
            name: list(self.hetero_flowtimes[name]) for name in self.schedulers
        }
        hetero_series["SCA adv. (%)"] = self.hetero_advantages
        failure_series: Dict[str, Sequence[float]] = {
            name: list(self.failure_flowtimes[name]) for name in self.schedulers
        }
        failure_series["SCA adv. (%)"] = self.failure_advantages
        hetero_table = render_sweep_table(
            "speed spread",
            list(self.speed_spreads),
            hetero_series,
            title=(
                "Scenario sweep -- mean flowtime vs machine-speed spread "
                "(UniformSpeeds(1-s, 1+s), mean-normalised)"
            ),
        )
        failure_table = render_sweep_table(
            "failure rate",
            list(self.failure_rates),
            failure_series,
            title=(
                "Scenario sweep -- mean flowtime vs per-machine failure rate "
                f"(mean repair {self.mean_repair:g} s)"
            ),
        )
        footer = (
            "SCA adv. (%) = flowtime reduction of SCA vs the best of "
            "LATE/Mantri/Fair at that sweep point"
        )
        return "\n\n".join([hetero_table, failure_table, footer])


def run_scenario_sweep(
    config: Optional[ExperimentConfig] = None,
    *,
    speed_spreads: Sequence[float] = DEFAULT_SPEED_SPREADS,
    failure_rates: Sequence[float] = DEFAULT_FAILURE_RATES,
    mean_repair: float = DEFAULT_MEAN_REPAIR,
) -> ScenarioSweepResult:
    """Run both adversity axes and collect per-scheduler mean flowtimes.

    A thin wrapper over the ``scenario-sweep``
    :class:`~repro.study.core.Study` preset (:mod:`repro.study.presets`):
    the two adversity axes fold into one scenario axis (sharing their zero
    point, the homogeneous ``base`` cluster, so those simulations run once,
    not once per axis), and the whole product goes through a single
    :meth:`~repro.study.core.Study.run` call, so ``config.workers`` fans it
    out over a process pool with bit-identical results.
    """
    from repro.study.presets import compute_scenario_sweep

    config = config if config is not None else ExperimentConfig.default_bench()
    if not speed_spreads or not failure_rates:
        raise ValueError("both sweep axes need at least one point")
    if any(not 0.0 <= s < 1.0 for s in speed_spreads):
        raise ValueError(f"speed spreads must lie in [0, 1), got {speed_spreads}")
    if any(rate < 0.0 for rate in failure_rates):
        raise ValueError(f"failure rates must be >= 0, got {failure_rates}")
    return compute_scenario_sweep(
        config,
        speed_spreads=speed_spreads,
        failure_rates=failure_rates,
        mean_repair=mean_repair,
    )
