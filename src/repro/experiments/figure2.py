"""Figure 2 -- SRPTMS+C flowtime as a function of r (epsilon = 0.6).

``r`` weighs the task-duration standard deviation inside the remaining
effective workload ``U_i(l)``.  The paper sweeps r from 1 to 10 at
``epsilon = 0.6`` and finds a *flat* dependence (the within-job variation of
the Google trace is small), with the unweighted average minimised around
r = 3 and the weighted average around r = 8.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

from repro.experiments.config import ExperimentConfig
from repro.experiments.report import render_sweep_table

__all__ = ["Figure2Result", "run_figure2", "DEFAULT_R_VALUES"]

#: The paper's Figure 2 x-axis.
DEFAULT_R_VALUES: Tuple[float, ...] = (1, 2, 3, 4, 5, 6, 7, 8, 9, 10)


@dataclass(frozen=True)
class Figure2Result:
    """Flowtime metrics for each r value."""

    r_values: Tuple[float, ...]
    mean_flowtimes: Tuple[float, ...]
    weighted_mean_flowtimes: Tuple[float, ...]
    epsilon: float

    @property
    def best_r_unweighted(self) -> float:
        """The swept ``r`` minimising the unweighted mean flowtime."""
        index = min(range(len(self.r_values)), key=lambda i: self.mean_flowtimes[i])
        return self.r_values[index]

    @property
    def best_r_weighted(self) -> float:
        """The swept ``r`` minimising the weighted mean flowtime."""
        index = min(
            range(len(self.r_values)),
            key=lambda i: self.weighted_mean_flowtimes[i],
        )
        return self.r_values[index]

    @property
    def relative_spread_unweighted(self) -> float:
        """(max - min) / min of the unweighted curve -- the paper expects this small."""
        low = min(self.mean_flowtimes)
        high = max(self.mean_flowtimes)
        if low == 0:
            return 0.0
        return (high - low) / low

    def render(self) -> str:
        """Human-readable report of this experiment's results."""
        table = render_sweep_table(
            "r",
            list(self.r_values),
            {
                "Average job flowtime (s)": list(self.mean_flowtimes),
                "Weighted average flowtime (s)": list(self.weighted_mean_flowtimes),
            },
            title=f"Figure 2 -- flowtime vs r under SRPTMS+C (epsilon={self.epsilon:g})",
        )
        return (
            table
            + f"\nbest r (unweighted): {self.best_r_unweighted:g}"
            + f"\nbest r (weighted)  : {self.best_r_weighted:g}"
            + f"\nrelative spread of the unweighted curve: "
            f"{100.0 * self.relative_spread_unweighted:.1f}%"
        )


def run_figure2(
    config: Optional[ExperimentConfig] = None,
    r_values: Sequence[float] = DEFAULT_R_VALUES,
    epsilon: float = 0.6,
) -> Figure2Result:
    """Sweep r for SRPTMS+C and collect both flowtime averages.

    A thin wrapper over the ``figure2`` :class:`~repro.study.core.Study`
    preset (:mod:`repro.study.presets`).
    """
    from repro.study.presets import compute_figure2

    config = config if config is not None else ExperimentConfig.default_bench()
    if not r_values:
        raise ValueError("r_values must not be empty")
    return compute_figure2(config, r_values=r_values, epsilon=epsilon)
