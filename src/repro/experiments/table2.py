"""Table II -- statistics of the (synthetic) Google trace.

The experiment generates the synthetic trace at the configured scale,
computes the same statistics the paper publishes for the real trace and
reports them side by side with the published targets.  Job counts and the
trace duration scale with ``config.scale``; per-task statistics
(min/mean/max duration, tasks per job) are scale-free and should match the
targets up to heavy-tail sampling noise.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional


from repro.experiments.config import ExperimentConfig
from repro.experiments.report import render_key_values
from repro.workload.google_trace import TABLE_II_TARGETS
from repro.workload.trace import TraceStatistics

__all__ = ["Table2Result", "run_table2"]


@dataclass(frozen=True)
class Table2Result:
    """Measured trace statistics alongside the paper's published values."""

    statistics: TraceStatistics
    scale: float

    @property
    def targets(self) -> Dict[str, float]:
        """The published Table II values, scaled where applicable."""
        return {
            "total_jobs": TABLE_II_TARGETS["total_jobs"] * self.scale,
            "trace_duration": TABLE_II_TARGETS["trace_duration"],
            "average_tasks_per_job": TABLE_II_TARGETS["average_tasks_per_job"],
            "min_task_duration": TABLE_II_TARGETS["min_task_duration"],
            "max_task_duration": TABLE_II_TARGETS["max_task_duration"],
            "average_task_duration": TABLE_II_TARGETS["average_task_duration"],
        }

    def render(self) -> str:
        """Human-readable report of this experiment's results."""
        stats = self.statistics
        targets = self.targets
        rows = {
            "Total number of Jobs": f"{stats.total_jobs}  (paper*scale: {targets['total_jobs']:.0f})",
            "Trace duration (s)": f"{stats.trace_duration:.1f}  (paper: {targets['trace_duration']:.1f})",
            "Average number of tasks per job": f"{stats.average_tasks_per_job:.2f}  (paper: {targets['average_tasks_per_job']:.2f})",
            "Minimum task duration (s)": f"{stats.min_task_duration:.1f}  (paper: {targets['min_task_duration']:.1f})",
            "Maximum task duration (s)": f"{stats.max_task_duration:.1f}  (paper: {targets['max_task_duration']:.1f})",
            "Average task duration (s)": f"{stats.average_task_duration:.1f}  (paper: {targets['average_task_duration']:.1f})",
        }
        return render_key_values(
            rows, title=f"Table II -- synthetic trace statistics (scale={self.scale:g})"
        )


def run_table2(config: Optional[ExperimentConfig] = None) -> Table2Result:
    """Generate the trace and compute its Table II statistics.

    A thin wrapper over the ``table2`` :class:`~repro.study.core.Study`
    preset (:mod:`repro.study.presets`) -- a zero-run study whose workload
    axis *is* the result.
    """
    from repro.study.presets import compute_table2

    config = config if config is not None else ExperimentConfig.default_bench()
    return compute_table2(config)
