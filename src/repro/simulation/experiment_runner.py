"""The execution path: single runs, replications, and parallel sweeps.

This module is the *one* place simulations are executed from.
:func:`run_simulation` performs a single engine run;
:class:`ReplicatedResult` aggregates several runs of one configuration;
:class:`ExperimentRunner` executes whole batches of runs.  (The historical
``repro.simulation.runner`` shim module was removed; import these names
from here or from the :mod:`repro.simulation` package.)

The paper's evaluation protocol (Section VI) repeats every simulation ten
times per configuration and sweeps epsilon, r and the cluster size --
hundreds of independent engine runs.  Each run is described by a picklable
:class:`RunSpec` (trace source + scheduler spec + seed + cluster
parameters); :class:`ExperimentRunner` executes a batch of specs either
serially (``workers=1``) or on a ``multiprocessing`` pool, in both cases
returning results in spec order.

Seeding contract
----------------
Every worker builds its *own* trace, scheduler and engine from the spec and
runs it with the spec's seed, exactly as the serial path does.  All
randomness inside a run flows from ``numpy.random.default_rng(seed)`` owned
by the engine, so a run's :class:`~repro.simulation.metrics.SimulationResult`
is a pure function of its spec -- parallel execution is bit-identical to
serial execution for the same seeds (only the wall-clock
``runtime_seconds`` field differs; it is excluded from
:meth:`SimulationResult.fingerprint`).

Everything a spec carries must be picklable: scheduler *classes* plus
keyword arguments (:class:`SchedulerSpec`) rather than closures, and a
:class:`~repro.workload.trace.Trace` instance, a :class:`TraceSpec` naming
a module-level factory, or a :class:`~repro.workload.stream.StreamSpec`
recipe for a lazily generated stream.  Lambdas work with ``workers=1``
only.

Results cache
-------------
Because a run is a pure function of its spec, the runner can skip runs it
has already executed: construct it with ``cache_dir`` (or pass a
:class:`~repro.simulation.results_store.ResultsStore`) and every executed
spec is content-addressed by :func:`~repro.simulation.results_store.
run_spec_fingerprint` and persisted; subsequent :meth:`ExperimentRunner.run`
calls over the same specs return byte-equal results without touching the
engine (``last_run_stats`` records how many specs were executed vs served
from cache -- the zero-runs-on-second-sweep property is asserted in
``tests/test_results_store.py``).  Specs containing lambdas or other
unstable components simply bypass the cache and execute normally.

Streaming progress
------------------
Long sweeps should not need to poll the cache directory to see progress:
pass ``on_result`` (to the constructor, or per-call to :meth:`ExperimentRunner.run`)
and the runner invokes ``on_result(spec, result, cache_hit)`` for every
spec as its result lands -- cache hits first (in spec order, with
``cache_hit=True``), then executed specs as they complete (spec order on
both the serial and the batched pool path).  On the miss path the result
is persisted to the store *before* the callback fires, so an observer
that saw a result can rely on a killed-and-restarted sweep finding it in
the cache.  The ``repro-mapreduce serve`` daemon's study registry is the
first consumer (:mod:`repro.service`).
"""

from __future__ import annotations

import os
import threading
import time as _time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    Hashable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

import multiprocessing

import numpy as np

from repro.cluster.stragglers import StragglerModel
from repro.scenarios import ScenarioSpec
from repro.simulation.engine import SimulationEngine
from repro.simulation.metrics import SimulationResult
from repro.simulation.results_store import (
    ResultsStore,
    UncacheableSpecError,
    canonical_spec_description,
    run_spec_fingerprint,
)
from repro.simulation.scheduler_api import Scheduler
from repro.workload.stream import StreamSpec, TraceStream
from repro.workload.trace import Trace

__all__ = [
    "SchedulerSpec",
    "TraceSpec",
    "RunSpec",
    "ResultCallback",
    "ExperimentRunner",
    "ReplicatedResult",
    "default_workers",
    "normalize_workers",
    "execute_run_spec",
    "run_simulation",
    "run_replications",
    "sweep_specs",
]


def default_workers() -> int:
    """Number of workers a ``workers=None`` runner uses (the usable CPUs)."""
    try:
        return max(1, len(os.sched_getaffinity(0)))
    except AttributeError:  # pragma: no cover - non-Linux fallback
        return max(1, os.cpu_count() or 1)


def normalize_workers(workers: Optional[int]) -> Optional[int]:
    """Normalise a worker-count knob to the library convention.

    The library and the CLI historically disagreed on "use every CPU"
    (``workers=None`` vs ``--workers 0``); this is the single place the
    mapping lives.  ``None`` and ``0`` both mean "all usable CPUs" and
    normalise to ``None``; any count >= 1 means exactly that many worker
    processes (1 = serial, in-process); negative counts are rejected.
    """
    if workers is None or workers == 0:
        return None
    if workers < 0:
        raise ValueError(
            f"workers must be >= 1, or 0/None for all CPUs; got {workers}"
        )
    return int(workers)


def run_simulation(
    trace: Trace,
    scheduler: Scheduler,
    num_machines: int,
    *,
    seed: int = 0,
    machine_speed: float = 1.0,
    straggler_model: Optional[StragglerModel] = None,
    scenario: Optional[ScenarioSpec] = None,
    max_time: Optional[float] = None,
    check_invariants: bool = False,
) -> SimulationResult:
    """Run one simulation and return its metrics.

    Parameters mirror :class:`~repro.simulation.engine.SimulationEngine`;
    ``seed`` controls both the workload sampling and any randomised
    tie-breaking inside the engine (scenario processes draw from dedicated
    streams derived from the same seed).
    """
    engine = SimulationEngine(
        trace=trace,
        scheduler=scheduler,
        num_machines=num_machines,
        seed=seed,
        machine_speed=machine_speed,
        straggler_model=straggler_model,
        scenario=scenario,
        max_time=max_time,
        check_invariants=check_invariants,
    )
    started = _time.perf_counter()
    result = engine.run()
    result.runtime_seconds = _time.perf_counter() - started
    return result


@dataclass
class ReplicatedResult:
    """Aggregate of several runs of the same configuration with different seeds."""

    scheduler_name: str
    results: List[SimulationResult] = field(default_factory=list)

    @property
    def num_replications(self) -> int:
        """Number of runs aggregated."""
        return len(self.results)

    def _metric(self, name: str) -> np.ndarray:
        return np.array([getattr(result, name) for result in self.results], dtype=float)

    @property
    def mean_flowtime(self) -> float:
        """Average over replications of the unweighted mean flowtime."""
        return float(self._metric("mean_flowtime").mean())

    @property
    def weighted_mean_flowtime(self) -> float:
        """Average over replications of the weighted mean flowtime."""
        return float(self._metric("weighted_mean_flowtime").mean())

    @property
    def mean_flowtime_std(self) -> float:
        """Standard deviation across replications of the unweighted mean."""
        return float(self._metric("mean_flowtime").std(ddof=0))

    @property
    def weighted_mean_flowtime_std(self) -> float:
        """Standard deviation across replications of the weighted mean."""
        return float(self._metric("weighted_mean_flowtime").std(ddof=0))

    @property
    def mean_makespan(self) -> float:
        """Average makespan across replications."""
        return float(self._metric("makespan").mean())

    @property
    def mean_cloning_ratio(self) -> float:
        """Average copies-per-task ratio across replications."""
        return float(self._metric("cloning_ratio").mean())

    def fraction_completed_within(self, limit: float) -> float:
        """Replication-averaged fraction of jobs finishing within ``limit``."""
        values = [result.fraction_completed_within(limit) for result in self.results]
        return float(np.mean(values))

    def flowtime_cdf(self, points: Sequence[float]) -> np.ndarray:
        """Replication-averaged empirical CDF evaluated at ``points``."""
        curves = [result.flowtime_cdf(points) for result in self.results]
        return np.mean(np.stack(curves, axis=0), axis=0)

    def summary(self) -> dict:
        """Flat dictionary of the headline replication metrics."""
        return {
            "scheduler": self.scheduler_name,
            "replications": self.num_replications,
            "mean_flowtime": self.mean_flowtime,
            "mean_flowtime_std": self.mean_flowtime_std,
            "weighted_mean_flowtime": self.weighted_mean_flowtime,
            "weighted_mean_flowtime_std": self.weighted_mean_flowtime_std,
            "mean_makespan": self.mean_makespan,
            "mean_cloning_ratio": self.mean_cloning_ratio,
        }


@dataclass(frozen=True)
class SchedulerSpec:
    """A picklable recipe for constructing a scheduler in a worker process.

    Holds the scheduler *class* (picklable by reference, unlike a lambda
    closing over parameters) plus its keyword arguments.  Instances are
    callable so they can stand in anywhere a zero-argument scheduler
    factory is expected.
    """

    scheduler_cls: type
    kwargs: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not (isinstance(self.scheduler_cls, type) and issubclass(self.scheduler_cls, Scheduler)):
            raise TypeError(
                f"scheduler_cls must be a Scheduler subclass, got {self.scheduler_cls!r}"
            )

    def build(self) -> Scheduler:
        """Construct the scheduler from the stored class and kwargs."""
        return self.scheduler_cls(**dict(self.kwargs))

    def __call__(self) -> Scheduler:
        return self.build()


@dataclass(frozen=True)
class TraceSpec:
    """A picklable recipe for constructing a trace in a worker process.

    ``factory`` must be a module-level callable (picklable by reference);
    workers call ``factory(**kwargs)``.  Shipping a recipe instead of the
    trace itself keeps the per-task pickle payload small for large traces
    and lets workers memoise construction (the factory must be
    deterministic in its arguments -- true for every generator in
    :mod:`repro.workload`, which all take explicit seeds).
    """

    factory: Callable[..., Trace]
    kwargs: Mapping[str, Any] = field(default_factory=dict)

    def build(self) -> Trace:
        """Build the trace by calling the stored factory."""
        trace = self.factory(**dict(self.kwargs))
        if not isinstance(trace, Trace):
            raise TypeError(
                f"trace factory {self.factory!r} returned {type(trace).__name__}, "
                "expected a Trace"
            )
        return trace

    def cache_key(self) -> str:
        """Stable per-process memoisation key (factory identity + arguments)."""
        factory = self.factory
        name = f"{getattr(factory, '__module__', '?')}.{getattr(factory, '__qualname__', repr(factory))}"
        items = ", ".join(f"{k}={self.kwargs[k]!r}" for k in sorted(self.kwargs))
        return f"{name}({items})"


TraceSource = Union[Trace, TraceSpec, StreamSpec]

#: Per-process memo of traces built from :class:`TraceSpec` recipes, so a
#: process handling many runs of the same sweep builds the trace once.
#: Bounded LRU (a long-lived parent process sweeping many configs must not
#: retain every trace it ever built).  Guarded by a lock: the serve
#: daemon's executor threads resolve traces concurrently.
_TRACE_CACHE: "OrderedDict[str, Trace]" = OrderedDict()
_TRACE_CACHE_MAX = 8
_TRACE_CACHE_LOCK = threading.Lock()


def _resolve_trace(source: TraceSource) -> Union[Trace, TraceStream]:
    if isinstance(source, Trace):
        return source
    if isinstance(source, TraceSpec):
        key = source.cache_key()
        with _TRACE_CACHE_LOCK:
            trace = _TRACE_CACHE.get(key)
            if trace is not None:
                _TRACE_CACHE.move_to_end(key)
                return trace
        trace = source.build()
        with _TRACE_CACHE_LOCK:
            _TRACE_CACHE[key] = trace
            while len(_TRACE_CACHE) > _TRACE_CACHE_MAX:
                _TRACE_CACHE.popitem(last=False)
        return trace
    if isinstance(source, StreamSpec):
        # Streams are one-shot consumables: build a fresh one per run,
        # never memoise (a consumed stream cannot be replayed).
        return source.build()
    raise TypeError(
        f"trace source must be a Trace, TraceSpec or StreamSpec, got {source!r}"
    )


@dataclass(frozen=True)
class RunSpec:
    """Everything one simulation run needs, in picklable form.

    Attributes
    ----------
    trace:
        A :class:`Trace` (pickled wholesale), a :class:`TraceSpec`
        (rebuilt, and memoised, inside the worker), or a
        :class:`~repro.workload.stream.StreamSpec` (a fresh lazily
        generated stream is built for every run; pass the *spec*, never a
        consumed :class:`~repro.workload.stream.TraceStream` instance).
    scheduler:
        A zero-argument factory; use :class:`SchedulerSpec` when the spec
        must cross a process boundary.
    seed:
        Drives *all* randomness of the run (workload sampling, straggler
        inflation, randomised tie-breaking, and -- through dedicated
        streams -- the scenario's speed sampling and failure/slowdown
        timelines).
    scenario:
        Cluster environment (heterogeneous speeds, dynamic stragglers,
        failures); ``None`` is the paper's homogeneous static cluster.
        :class:`~repro.scenarios.ScenarioSpec` is a frozen dataclass, so it
        pickles across the pool like every other spec field.
    tag:
        Opaque grouping label (e.g. the sweep-point value) used by
        :meth:`ExperimentRunner.run_grouped`.
    """

    trace: TraceSource
    scheduler: Callable[[], Scheduler]
    num_machines: int
    seed: int = 0
    machine_speed: float = 1.0
    straggler_factory: Optional[Callable[[], StragglerModel]] = None
    scenario: Optional[ScenarioSpec] = None
    max_time: Optional[float] = None
    tag: Optional[Hashable] = None

    def __post_init__(self) -> None:
        if self.num_machines <= 0:
            raise ValueError(f"num_machines must be positive, got {self.num_machines}")
        if not callable(self.scheduler):
            raise TypeError(f"scheduler must be callable, got {self.scheduler!r}")
        if self.scenario is not None and not isinstance(self.scenario, ScenarioSpec):
            raise TypeError(
                f"scenario must be a ScenarioSpec, got {self.scenario!r}"
            )
        if isinstance(self.trace, TraceStream):
            raise TypeError(
                "RunSpec.trace must not be a TraceStream (streams are "
                "one-shot); pass its StreamSpec so every run builds a fresh "
                "stream"
            )

    def with_seed(self, seed: int) -> "RunSpec":
        """Copy of this spec with a different replication seed."""
        from dataclasses import replace

        return replace(self, seed=seed)

    def execute(self) -> SimulationResult:
        """Build the trace/scheduler/engine and run the simulation."""
        straggler = self.straggler_factory() if self.straggler_factory else None
        return run_simulation(
            _resolve_trace(self.trace),
            self.scheduler(),
            self.num_machines,
            seed=self.seed,
            machine_speed=self.machine_speed,
            straggler_model=straggler,
            scenario=self.scenario,
            max_time=self.max_time,
        )


def execute_run_spec(spec: RunSpec) -> SimulationResult:
    """Module-level worker entry point (must be picklable by reference)."""
    return spec.execute()


#: Worker-process results store, set by :func:`_init_worker_store` when the
#: parent runner has a cache configured.  ``None`` in the parent (the
#: initializer only runs inside pool workers) and in store-less pools.
_WORKER_STORE: Optional[ResultsStore] = None


def _init_worker_store(cache_dir: str) -> None:
    """Pool initializer: open the shared results store in this worker."""
    global _WORKER_STORE
    _WORKER_STORE = ResultsStore(cache_dir)


def _execute_batch(
    batch: List[RunSpec],
) -> Tuple[int, List[SimulationResult]]:
    """Pool entry point: run a whole batch of specs in one dispatch.

    Returns the executing worker's PID alongside the results so the
    parent can account dispatches per worker
    (:attr:`ExperimentRunner.last_dispatch_stats`).  Shipping batches --
    rather than relying on ``pool.map`` chunking of single specs --
    keeps one IPC round-trip (and one results pickle) per *batch* of
    small runs instead of per run.

    When the pool was initialised with a results store, each cacheable
    result is persisted *here*, before it crosses back to the parent:
    store writes (row rendering, canonical JSON, hashing) then scale out
    with the workers instead of serialising on the parent, and the
    persist-before-observe guarantee of
    :meth:`ExperimentRunner.run` holds a fortiori.  The store's atomic
    same-destination writes make concurrent workers safe by design.
    """
    store = _WORKER_STORE
    results = []
    for spec in batch:
        result = spec.execute()
        if store is not None:
            try:
                key = run_spec_fingerprint(spec)
            except UncacheableSpecError:
                pass
            else:
                store.store(key, canonical_spec_description(spec), result)
        results.append(result)
    return os.getpid(), results


#: Signature of a streaming progress observer: ``(spec, result, cache_hit)``.
ResultCallback = Callable[["RunSpec", SimulationResult, bool], None]


class ExperimentRunner:
    """Executes batches of :class:`RunSpec` serially or on a process pool.

    Parameters
    ----------
    workers:
        ``1`` runs every spec in-process (no pool, no pickling
        constraints).  ``N > 1`` fans specs out over ``N`` worker
        processes.  ``None`` and ``0`` both use every usable CPU (see
        :func:`normalize_workers`).
    mp_context:
        ``multiprocessing`` start-method name (``"fork"``/``"spawn"``) or
        context object; defaults to the platform default.
    chunksize:
        Specs batched into one worker dispatch; defaults to a heuristic
        that balances scheduling overhead against load balance (see
        :meth:`_execute`).
    cache_dir:
        Directory of a :class:`~repro.simulation.results_store.ResultsStore`.
        When set, every executed spec's result is persisted there and
        subsequent runs of the same spec are served from disk byte-equal,
        with zero engine runs (see the module docstring).  ``None`` (the
        default) disables caching.
    store:
        An existing :class:`ResultsStore` to use instead of ``cache_dir``
        (mutually exclusive with it).
    on_result:
        Default streaming observer, invoked as ``on_result(spec, result,
        cache_hit)`` for every spec of every :meth:`run` call as its
        result lands (see the module docstring); a per-call ``on_result``
        overrides it.  ``None`` (the default) disables streaming.
    """

    def __init__(
        self,
        workers: Optional[int] = 1,
        *,
        mp_context: Union[str, Any, None] = None,
        chunksize: Optional[int] = None,
        cache_dir: Union[str, "os.PathLike[str]", None] = None,
        store: Optional[ResultsStore] = None,
        on_result: Optional[ResultCallback] = None,
    ) -> None:
        workers = normalize_workers(workers)
        if workers is None:
            workers = default_workers()
        self.workers = int(workers)
        self._mp_context = mp_context
        if chunksize is not None and chunksize < 1:
            raise ValueError(f"chunksize must be >= 1, got {chunksize}")
        self._chunksize = chunksize
        if cache_dir is not None and store is not None:
            raise ValueError("pass either cache_dir or store, not both")
        self.store = ResultsStore(cache_dir) if cache_dir is not None else store
        self.on_result = on_result
        #: Stats of the most recent :meth:`run` call:
        #: ``executed`` engine runs, ``cache_hits`` served from the store,
        #: ``uncacheable`` specs that bypassed the cache.
        self.last_run_stats: Dict[str, int] = {
            "executed": 0,
            "cache_hits": 0,
            "uncacheable": 0,
        }
        #: Dispatch accounting of the most recent :meth:`run`: number of
        #: ``batches`` shipped, the ``batch_size`` used, ``per_worker`` --
        #: batches handled per worker PID (the parent's own PID on the
        #: serial path) -- and ``cache_hits``, the specs that never needed
        #: a dispatch because the store served them.  A benchmark that
        #: claims throughput must show ``cache_hits == 0`` here (see
        #: ``benchmarks/test_runner_parallel.py``).
        self.last_dispatch_stats: Dict[str, Any] = {
            "batches": 0,
            "batch_size": 0,
            "per_worker": {},
            "cache_hits": 0,
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ExperimentRunner(workers={self.workers})"

    # -- execution -----------------------------------------------------------------

    def _execute(
        self,
        specs: List[RunSpec],
        on_each: Optional[Callable[[int, SimulationResult], None]] = None,
        worker_store_dir: Optional[str] = None,
    ) -> List[SimulationResult]:
        """Run every spec (serially or on the pool), no cache involved.

        Pool dispatch is **batched**: specs are grouped into contiguous
        batches of ``chunksize`` (default: a few batches per worker) and
        each batch crosses the process boundary as one task, so a sweep
        of many small runs pays one pickle/IPC round-trip per batch, not
        per run.  Results come back in spec order either way;
        :attr:`last_dispatch_stats` records the batch count and the
        batches-per-worker distribution.  ``on_each(position, result)``
        fires as results land, in spec order on both paths (the pool path
        consumes batches as they complete via ``imap``, so the hook
        streams instead of waiting for the whole sweep).

        ``worker_store_dir`` (pool path only) makes every worker open the
        results store at that directory and persist its own results
        before shipping them back -- see :func:`_execute_batch`.
        """
        if not specs:
            self.last_dispatch_stats = {
                "batches": 0,
                "batch_size": 0,
                "per_worker": {},
                "cache_hits": 0,
            }
            return []
        pool_size = min(self.workers, len(specs))
        if pool_size == 1:
            self.last_dispatch_stats = {
                "batches": 1,
                "batch_size": len(specs),
                "per_worker": {os.getpid(): 1},
                "cache_hits": 0,
            }
            results = []
            for position, spec in enumerate(specs):
                result = spec.execute()
                results.append(result)
                if on_each is not None:
                    on_each(position, result)
            return results
        context = self._mp_context
        if not isinstance(context, multiprocessing.context.BaseContext):
            context = multiprocessing.get_context(context)
        batch_size = self._chunksize
        if batch_size is None:
            # A few batches per worker: amortise IPC without starving anyone.
            batch_size = max(1, len(specs) // (pool_size * 4))
        batches = [
            specs[start : start + batch_size]
            for start in range(0, len(specs), batch_size)
        ]
        per_worker: Dict[int, int] = {}
        results: List[SimulationResult] = []
        initializer = _init_worker_store if worker_store_dir else None
        initargs = (worker_store_dir,) if worker_store_dir else ()
        with context.Pool(
            processes=pool_size, initializer=initializer, initargs=initargs
        ) as pool:
            for pid, batch_results in pool.imap(_execute_batch, batches, chunksize=1):
                per_worker[pid] = per_worker.get(pid, 0) + 1
                for result in batch_results:
                    if on_each is not None:
                        on_each(len(results), result)
                    results.append(result)
        self.last_dispatch_stats = {
            "batches": len(batches),
            "batch_size": batch_size,
            "per_worker": per_worker,
            "cache_hits": 0,
        }
        return results

    def run(
        self,
        specs: Sequence[RunSpec],
        on_result: Optional[ResultCallback] = None,
    ) -> List[SimulationResult]:
        """Execute every spec and return results in spec order.

        With a results store configured, specs whose results are already
        cached are served from disk (byte-equal to a fresh run); only the
        remaining specs touch the engine, and their results are persisted
        for the next invocation.  ``on_result`` (or the constructor
        default) streams every result as it lands -- cache hits first,
        then executions, each persisted before its callback fires.
        """
        specs = list(specs)
        callback = self.on_result if on_result is None else on_result
        stats = {"executed": 0, "cache_hits": 0, "uncacheable": 0}
        self.last_run_stats = stats
        if not specs:
            return []
        store = self.store
        if store is None:
            stats["executed"] = len(specs)
            if callback is None:
                return self._execute(specs)

            def relay(position: int, result: SimulationResult) -> None:
                callback(specs[position], result, False)

            return self._execute(specs, relay)

        results: List[Optional[SimulationResult]] = [None] * len(specs)
        pending: List[int] = []
        keys: Dict[int, Optional[str]] = {}
        for index, spec in enumerate(specs):
            try:
                key = run_spec_fingerprint(spec)
            except UncacheableSpecError:
                key = None
                stats["uncacheable"] += 1
            keys[index] = key
            cached = store.load(key) if key is not None else None
            if cached is not None:
                results[index] = cached
                stats["cache_hits"] += 1
                if callback is not None:
                    callback(spec, cached, True)
            else:
                pending.append(index)

        # On the pool path, delegate persistence to the workers themselves
        # (they store each result before shipping it back, so writes scale
        # out instead of serialising on the parent).  Only a store the
        # workers can faithfully reopen by path qualifies; a custom
        # subclass keeps the parent-side write.  The serial path and
        # custom stores persist in ``on_each`` below, preserving the
        # persist-before-observe ordering either way.
        pooled = self.workers > 1 and len(pending) > 1
        workers_persist = pooled and type(store) is ResultsStore
        worker_store_dir = str(store.cache_dir) if workers_persist else None

        def on_each(position: int, result: SimulationResult) -> None:
            # Persist before observing: a callback consumer that saw this
            # result may rely on a restarted sweep finding it in the cache.
            index = pending[position]
            key = keys[index]
            if key is not None and not workers_persist:
                store.store(
                    key, canonical_spec_description(specs[index]), result
                )
            results[index] = result
            stats["executed"] += 1
            if callback is not None:
                callback(specs[index], result, False)

        self._execute(
            [specs[index] for index in pending],
            on_each,
            worker_store_dir=worker_store_dir,
        )
        self.last_dispatch_stats["cache_hits"] = stats["cache_hits"]
        return results  # type: ignore[return-value]

    def run_grouped(
        self, specs: Sequence[RunSpec]
    ) -> "OrderedDict[Optional[Hashable], List[SimulationResult]]":
        """Execute every spec and group results by ``spec.tag``.

        Groups appear in first-occurrence order of their tag; within a
        group, results keep spec order.  This is the natural shape for a
        sweep: one spec per (sweep point, seed), tagged with the sweep
        point.
        """
        specs = list(specs)
        results = self.run(specs)
        grouped: "OrderedDict[Optional[Hashable], List[SimulationResult]]" = OrderedDict()
        for spec, result in zip(specs, results):
            grouped.setdefault(spec.tag, []).append(result)
        return grouped

    def run_replications(
        self,
        trace: TraceSource,
        scheduler_factory: Callable[[], Scheduler],
        num_machines: int,
        *,
        seeds: Sequence[int] = (0, 1, 2),
        machine_speed: float = 1.0,
        straggler_model_factory: Optional[Callable[[], StragglerModel]] = None,
        scenario: Optional[ScenarioSpec] = None,
        max_time: Optional[float] = None,
    ) -> ReplicatedResult:
        """One run per seed of a single configuration (the paper's protocol)."""
        if not seeds:
            raise ValueError("at least one seed is required")
        base = RunSpec(
            trace=trace,
            scheduler=scheduler_factory,
            num_machines=num_machines,
            machine_speed=machine_speed,
            straggler_factory=straggler_model_factory,
            scenario=scenario,
            max_time=max_time,
        )
        results = self.run([base.with_seed(seed) for seed in seeds])
        return ReplicatedResult(
            scheduler_name=results[0].scheduler_name, results=results
        )


def sweep_specs(
    trace: TraceSource,
    points: Sequence[Tuple[Hashable, Callable[[], Scheduler], int]],
    seeds: Sequence[int],
    *,
    machine_speed: float = 1.0,
    straggler_model_factory: Optional[Callable[[], StragglerModel]] = None,
    scenario: Optional[ScenarioSpec] = None,
    max_time: Optional[float] = None,
) -> List[RunSpec]:
    """Cartesian product of sweep points and seeds as a flat spec list.

    ``points`` is a sequence of ``(tag, scheduler_factory, num_machines)``
    triples; each is replicated once per seed, tagged for
    :meth:`ExperimentRunner.run_grouped`.
    """
    if not seeds:
        raise ValueError("at least one seed is required")
    specs: List[RunSpec] = []
    for tag, factory, num_machines in points:
        for seed in seeds:
            specs.append(
                RunSpec(
                    trace=trace,
                    scheduler=factory,
                    num_machines=num_machines,
                    seed=seed,
                    machine_speed=machine_speed,
                    straggler_factory=straggler_model_factory,
                    scenario=scenario,
                    max_time=max_time,
                    tag=tag,
                )
            )
    return specs


def run_replications(
    trace: Trace,
    scheduler_factory: Callable[[], Scheduler],
    num_machines: int,
    *,
    seeds: Sequence[int] = (0, 1, 2),
    machine_speed: float = 1.0,
    straggler_model_factory: Optional[Callable[[], StragglerModel]] = None,
    scenario: Optional[ScenarioSpec] = None,
    max_time: Optional[float] = None,
    workers: Optional[int] = 1,
) -> ReplicatedResult:
    """Run the same (trace, scheduler, cluster) configuration once per seed.

    A fresh scheduler instance is built per replication because schedulers
    carry state (priority queues, per-job bookkeeping) that must not leak
    between runs.  With ``workers > 1`` (or ``0``/``None`` for all CPUs)
    the replications fan out over a process pool (``scheduler_factory`` and
    ``straggler_model_factory`` must then be picklable -- use
    :class:`SchedulerSpec` rather than a lambda); results are bit-identical
    to ``workers=1`` for the same seeds.
    """
    return ExperimentRunner(workers=workers).run_replications(
        trace,
        scheduler_factory,
        num_machines,
        seeds=seeds,
        machine_speed=machine_speed,
        straggler_model_factory=straggler_model_factory,
        scenario=scenario,
        max_time=max_time,
    )
