"""Per-job records and aggregate metrics of one simulation run.

The paper's headline metrics are the weighted and unweighted averages of job
flowtime and the flowtime CDFs over two ranges (small jobs, Figure 4; big
jobs, Figure 5).  :class:`SimulationResult` computes all of them, plus the
bookkeeping quantities the ablation benchmarks use (copies launched, wasted
clone work, machine utilisation).

Scale notes: :class:`JobRecord` is a compact ``__slots__`` object (a
million-job run stores a million of them), and the flowtime/weight arrays
backing every aggregate are built **once** per batch of records and cached
-- ``add_record`` invalidates the cache, so metric queries after a run
never rebuild the arrays (batched metric accumulation)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

__all__ = ["JobRecord", "SimulationResult"]


class JobRecord:
    """Immutable-by-convention record of one completed job (engine-written)."""

    __slots__ = (
        "job_id",
        "arrival_time",
        "completion_time",
        "weight",
        "num_map_tasks",
        "num_reduce_tasks",
        "copies_launched",
        "map_phase_completion_time",
        "num_stages",
    )

    def __init__(
        self,
        job_id: int,
        arrival_time: float,
        completion_time: float,
        weight: float,
        num_map_tasks: int,
        num_reduce_tasks: int,
        copies_launched: int,
        map_phase_completion_time: Optional[float] = None,
        num_stages: int = 2,
    ) -> None:
        self.job_id = job_id
        self.arrival_time = arrival_time
        self.completion_time = completion_time
        self.weight = weight
        self.num_map_tasks = num_map_tasks
        self.num_reduce_tasks = num_reduce_tasks
        self.copies_launched = copies_launched
        self.map_phase_completion_time = map_phase_completion_time
        self.num_stages = num_stages

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"JobRecord(job_id={self.job_id}, arrival_time={self.arrival_time}, "
            f"completion_time={self.completion_time}, weight={self.weight})"
        )

    @property
    def flowtime(self) -> float:
        """``f_i - a_i``."""
        return self.completion_time - self.arrival_time

    @property
    def weighted_flowtime(self) -> float:
        """``w_i (f_i - a_i)``."""
        return self.weight * self.flowtime

    @property
    def num_tasks(self) -> int:
        """``m_i + r_i`` of the recorded job."""
        return self.num_map_tasks + self.num_reduce_tasks

    @property
    def map_phase_duration(self) -> Optional[float]:
        """Elapsed time of the map phase (arrival to last map completion)."""
        if self.map_phase_completion_time is None:
            return None
        return self.map_phase_completion_time - self.arrival_time


@dataclass
class SimulationResult:
    """Aggregate outcome of one simulation run."""

    scheduler_name: str
    num_machines: int
    records: List[JobRecord] = field(default_factory=list)
    #: Total copies launched (originals + clones) across all jobs.
    total_copies: int = 0
    #: Total logical tasks across all jobs (copies beyond this are clones).
    total_tasks: int = 0
    #: Copies launched for tasks that already had an active copy -- clones
    #: (SRPTMS+C, SCA) and speculative duplicates (LATE, Mantri) alike.
    #: Replacement copies of failure-killed tasks are *not* redundant (the
    #: killed copy no longer occupies a machine).  Engine-maintained, so the
    #: counter is comparable across all schedulers and policy compositions.
    redundant_copies_launched: int = 0
    #: Processing time consumed by copies that were killed (redundant work).
    wasted_work: float = 0.0
    #: Processing time consumed by copies that completed (useful work).
    useful_work: float = 0.0
    #: Simulated time at which the last job completed.
    makespan: float = 0.0
    #: Copies requested by the scheduler beyond the free-machine supply.
    over_requests: int = 0
    #: Machine failures that occurred during the run (scenario-driven).
    machine_failures: int = 0
    #: Copies killed because their hosting machine failed (each is
    #: re-dispatched exactly once through the normal scheduling path).
    copies_killed_by_failure: int = 0
    #: Relaunches that resumed from a checkpoint instead of from zero
    #: (checkpoint redundancy policy only).
    checkpoint_resumes: int = 0
    #: Raw work durably saved by checkpointing across failure kills.
    work_saved_by_checkpointing: float = 0.0
    #: Dynamic straggler slowdown periods that began during the run.
    straggler_onsets: int = 0
    #: Copies launched on a machine of their task's preferred rack (only
    #: counted while a non-degenerate topology is active; 0 on flat runs).
    local_launches: int = 0
    #: Copies launched off their task's preferred rack (these pay the
    #: topology's remote-read slowdown on their effective rate).
    remote_launches: int = 0
    #: Wall-clock seconds the simulation took (filled by the runner).
    runtime_seconds: float = 0.0
    #: Seed used for the run (filled by the runner).
    seed: int = 0

    # -- ingestion (engine-only) ----------------------------------------------------

    def add_record(self, record: JobRecord) -> None:
        """Append one completed job (invalidates the cached metric arrays)."""
        self.records.append(record)
        self.__dict__.pop("_flowtimes_cache", None)
        self.__dict__.pop("_weights_cache", None)

    # -- pickling -----------------------------------------------------------------------------

    def __getstate__(self) -> Dict[str, object]:
        """Row-packed pickle form: records as plain tuples, caches dropped.

        Pool workers ship whole shard results across the process boundary;
        pickling the per-record ``__slots__`` objects individually costs
        several times the packed-row form (one state dict per record), and
        the metric caches are derived data the receiver can rebuild.
        """
        state = dict(self.__dict__)
        state.pop("_flowtimes_cache", None)
        state.pop("_weights_cache", None)
        state["records"] = [
            (
                r.job_id,
                r.arrival_time,
                r.completion_time,
                r.weight,
                r.num_map_tasks,
                r.num_reduce_tasks,
                r.copies_launched,
                r.map_phase_completion_time,
                r.num_stages,
            )
            for r in self.records
        ]
        return state

    def __setstate__(self, state: Dict[str, object]) -> None:
        rows = state.pop("records")
        self.__dict__.update(state)
        self.records = [JobRecord(*row) for row in rows]

    # -- basic aggregates --------------------------------------------------------------

    @property
    def num_jobs(self) -> int:
        """Number of completed jobs recorded."""
        return len(self.records)

    @property
    def flowtimes(self) -> np.ndarray:
        """Array of job flowtimes in job-completion order (cached)."""
        cached = self.__dict__.get("_flowtimes_cache")
        if cached is None or len(cached) != len(self.records):
            cached = np.array([r.flowtime for r in self.records], dtype=float)
            self.__dict__["_flowtimes_cache"] = cached
        return cached

    @property
    def weights(self) -> np.ndarray:
        """Array of job weights in job-completion order (cached)."""
        cached = self.__dict__.get("_weights_cache")
        if cached is None or len(cached) != len(self.records):
            cached = np.array([r.weight for r in self.records], dtype=float)
            self.__dict__["_weights_cache"] = cached
        return cached

    @property
    def total_flowtime(self) -> float:
        """Unweighted sum of job flowtimes."""
        return float(self.flowtimes.sum()) if self.records else 0.0

    @property
    def total_weighted_flowtime(self) -> float:
        """The paper's objective: ``sum_i w_i (f_i - a_i)``."""
        if not self.records:
            return 0.0
        return float((self.flowtimes * self.weights).sum())

    @property
    def mean_flowtime(self) -> float:
        """Unweighted average job flowtime (Figures 1-3, 6)."""
        if not self.records:
            return 0.0
        return float(self.flowtimes.mean())

    @property
    def weighted_mean_flowtime(self) -> float:
        """Weighted average ``sum w_i f_i / sum w_i`` (Figures 1-3, 6)."""
        if not self.records:
            return 0.0
        weights = self.weights
        return float((self.flowtimes * weights).sum() / weights.sum())

    @property
    def max_flowtime(self) -> float:
        """Largest job flowtime of the run."""
        if not self.records:
            return 0.0
        return float(self.flowtimes.max())

    @property
    def median_flowtime(self) -> float:
        """Median job flowtime of the run."""
        if not self.records:
            return 0.0
        return float(np.median(self.flowtimes))

    def percentile_flowtime(self, q: float) -> float:
        """q-th percentile of the flowtime distribution (q in [0, 100])."""
        if not 0.0 <= q <= 100.0:
            raise ValueError(f"percentile must be in [0, 100], got {q}")
        if not self.records:
            return 0.0
        return float(np.percentile(self.flowtimes, q))

    # -- CDFs (Figures 4 and 5) -----------------------------------------------------------

    def fraction_completed_within(self, limit: float) -> float:
        """Fraction of all jobs whose flowtime is at most ``limit``."""
        if not self.records:
            return 0.0
        return float(np.mean(self.flowtimes <= limit))

    def flowtime_cdf(self, points: Sequence[float]) -> np.ndarray:
        """Empirical CDF of job flowtime evaluated at ``points``."""
        pts = np.asarray(list(points), dtype=float)
        if not self.records:
            return np.zeros_like(pts)
        flowtimes = np.sort(self.flowtimes)
        return np.searchsorted(flowtimes, pts, side="right") / len(flowtimes)

    def records_in_flowtime_range(
        self, low: float, high: float
    ) -> List[JobRecord]:
        """Jobs whose flowtime falls in ``[low, high]`` (Figure 4/5 slices)."""
        return [r for r in self.records if low <= r.flowtime <= high]

    @property
    def locality_fraction(self) -> float:
        """Fraction of topology-priced launches that ran rack-local."""
        total = self.local_launches + self.remote_launches
        if total == 0:
            return 0.0
        return self.local_launches / total

    # -- cloning / efficiency accounting ------------------------------------------------------

    @property
    def cloning_ratio(self) -> float:
        """Copies launched per logical task (1.0 means no cloning at all)."""
        if self.total_tasks == 0:
            return 0.0
        return self.total_copies / self.total_tasks

    @property
    def redundant_work_fraction(self) -> float:
        """Fraction of consumed machine time spent on killed clones."""
        total = self.useful_work + self.wasted_work
        if total == 0:
            return 0.0
        return self.wasted_work / total

    @property
    def average_utilization(self) -> float:
        """Machine-time consumed divided by ``M * makespan``."""
        if self.makespan <= 0:
            return 0.0
        return (self.useful_work + self.wasted_work) / (
            self.num_machines * self.makespan
        )

    # -- determinism fingerprinting -----------------------------------------------------------

    #: Keys of :meth:`canonical_dict`.  The results store hashes raw stored
    #: payloads over exactly these keys (record rows kept as loaded), so
    #: integrity checks skip the row -> JobRecord -> row round trip; any
    #: key added to :meth:`canonical_dict` must be added here too (the
    #: store's load-time fingerprint check fails loudly on drift).
    CANONICAL_KEYS = (
        "scheduler_name",
        "num_machines",
        "seed",
        "total_copies",
        "total_tasks",
        "redundant_copies_launched",
        "wasted_work",
        "useful_work",
        "makespan",
        "over_requests",
        "machine_failures",
        "copies_killed_by_failure",
        "checkpoint_resumes",
        "work_saved_by_checkpointing",
        "straggler_onsets",
        "local_launches",
        "remote_launches",
        "records",
    )

    def canonical_dict(self) -> Dict[str, object]:
        """Deterministic, JSON-serialisable dump of everything the simulation
        computed -- every per-job record plus all counters -- *excluding*
        wall-clock ``runtime_seconds``.

        Two runs of the same (trace, scheduler, seed) configuration produce
        equal canonical dicts regardless of where they executed; the
        parallel-vs-serial equivalence tests compare these.
        """
        return {
            "scheduler_name": self.scheduler_name,
            "num_machines": self.num_machines,
            "seed": self.seed,
            "total_copies": self.total_copies,
            "total_tasks": self.total_tasks,
            "redundant_copies_launched": self.redundant_copies_launched,
            "wasted_work": self.wasted_work,
            "useful_work": self.useful_work,
            "makespan": self.makespan,
            "over_requests": self.over_requests,
            "machine_failures": self.machine_failures,
            "copies_killed_by_failure": self.copies_killed_by_failure,
            "checkpoint_resumes": self.checkpoint_resumes,
            "work_saved_by_checkpointing": self.work_saved_by_checkpointing,
            "straggler_onsets": self.straggler_onsets,
            "local_launches": self.local_launches,
            "remote_launches": self.remote_launches,
            "records": [
                (
                    r.job_id,
                    r.arrival_time,
                    r.completion_time,
                    r.weight,
                    r.num_map_tasks,
                    r.num_reduce_tasks,
                    r.copies_launched,
                    r.map_phase_completion_time,
                    r.num_stages,
                )
                for r in self.records
            ],
        }

    def fingerprint(self) -> str:
        """SHA-256 over :meth:`canonical_dict` (byte-identical ⇔ equal hash).

        Floats are serialised through ``repr`` (exact round-trip), so even
        an ULP-level difference changes the fingerprint.
        """
        import hashlib
        import json

        payload = json.dumps(self.canonical_dict(), sort_keys=True)
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    # -- reporting ----------------------------------------------------------------------------

    def summary(self) -> Dict[str, float]:
        """Flat dictionary of the headline metrics, for tables and tests."""
        return {
            "scheduler": self.scheduler_name,
            "num_machines": self.num_machines,
            "num_jobs": self.num_jobs,
            "mean_flowtime": self.mean_flowtime,
            "weighted_mean_flowtime": self.weighted_mean_flowtime,
            "median_flowtime": self.median_flowtime,
            "max_flowtime": self.max_flowtime,
            "makespan": self.makespan,
            "cloning_ratio": self.cloning_ratio,
            "redundant_copies_launched": self.redundant_copies_launched,
            "redundant_work_fraction": self.redundant_work_fraction,
            "average_utilization": self.average_utilization,
            "over_requests": self.over_requests,
            "machine_failures": self.machine_failures,
            "copies_killed_by_failure": self.copies_killed_by_failure,
            "checkpoint_resumes": self.checkpoint_resumes,
            "work_saved_by_checkpointing": self.work_saved_by_checkpointing,
            "straggler_onsets": self.straggler_onsets,
            "local_launches": self.local_launches,
            "remote_launches": self.remote_launches,
        }

    @staticmethod
    def compare(results: Iterable["SimulationResult"]) -> List[Dict[str, float]]:
        """Summaries of several runs, ordered as given."""
        return [result.summary() for result in results]
