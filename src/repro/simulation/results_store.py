"""Content-addressed results store: skip simulation runs already computed.

Replication sweeps re-execute the same ``(trace, scheduler, scenario,
seed)`` cells over and over -- across figure drivers, across CLI
invocations, across interrupted-and-restarted sweeps.  Every
:class:`~repro.simulation.experiment_runner.RunSpec` is a pure function of
its fields (the seeding contract), so its
:class:`~repro.simulation.metrics.SimulationResult` can be cached on disk
and replayed instead of recomputed.

Keying
------
:func:`run_spec_fingerprint` derives a SHA-256 key from a *canonical
description* of the spec: every field that can influence the result --
trace contents or recipe, scheduler class + kwargs, seed, cluster size and
speed, scenario (including every nested process spec), straggler factory,
max_time -- rendered with exact float round-tripping (``repr``), bypassing
any class ``__repr__`` that rounds.  The ``tag`` field is *excluded*: it is
a grouping label and does not affect execution.  Change any other field --
even a nested ``ScenarioSpec`` process parameter -- and the key changes;
keep them identical and a sweep resumes from cache.

Specs that cannot be described stably (lambdas, closures, locally defined
classes) raise :class:`UncacheableSpecError`; the experiment runner treats
such specs as cache-bypass and simply executes them.

Integrity
---------
A cache entry stores the canonical spec description and the result's
:meth:`~repro.simulation.metrics.SimulationResult.fingerprint`.  On load
the result is rebuilt and its fingerprint recomputed; any mismatch (bit
rot, truncated write, hash collision, format drift) makes the entry a
*miss* -- corrupted entries are recomputed, never trusted.  A hit is
therefore byte-equal to the result a fresh run would produce (the
wall-clock ``runtime_seconds`` of the original run is preserved; it is
excluded from the fingerprint by design).

Concurrency
-----------
One ``cache_dir`` may be shared by many writers at once -- pool worker
processes, several CLI sweeps, and the ``repro-mapreduce serve`` daemon.
Two mechanisms make that safe:

* *atomic same-destination writes*: every entry is written to a temp file
  in the destination shard and ``os.replace``-d into place, so a reader
  observes either the old entry or the new one, never a torn mix (and two
  writers racing on one key leave whichever complete entry landed last --
  both are byte-identical by the purity contract anyway);
* *per-shard advisory locks* (:meth:`ResultsStore.shard_lock`): an
  ``fcntl.flock`` over ``<shard>/.lock`` (with a portable
  create-exclusive fallback where ``fcntl`` is unavailable) serialises
  the miss-then-compute window.  :meth:`ResultsStore.load_or_compute`
  packages the protocol -- acquire the lock, *re-read* (the race loser
  finds the winner's entry and skips its own engine run), compute and
  store on a true miss -- so identical specs cost one engine run per
  unique fingerprint even across independent processes.
"""

from __future__ import annotations

import contextlib
import dataclasses
import hashlib
import json
import os
import re
import tempfile
import time
import weakref
from pathlib import Path
from typing import Any, Callable, Dict, Iterator, Mapping, Optional, Tuple, Union

try:
    import fcntl
except ModuleNotFoundError:  # pragma: no cover - non-POSIX platforms
    fcntl = None

from repro.simulation.metrics import JobRecord, SimulationResult
from repro.workload.distributions import DurationDistribution
from repro.workload.trace import Trace

__all__ = [
    "UncacheableSpecError",
    "canonical_spec_description",
    "run_spec_fingerprint",
    "ResultsStore",
    "cache_stats",
    "prune_stale",
]

#: Bump when the canonical description or the entry format changes
#: incompatibly; old entries then miss (and are recomputed) instead of
#: being misinterpreted.  Version 2 added
#: ``SimulationResult.redundant_copies_launched`` to the payload.
#: Version 3 added the stage-DAG fields (``JobRecord.num_stages`` in every
#: record row, ``checkpoint_resumes`` and ``work_saved_by_checkpointing``)
#: to ``canonical_dict``; v2 entries are detected as stale and recomputed
#: rather than rebuilt with silently-defaulted fields.
#: Version 4 added the rack-locality counters (``local_launches`` and
#: ``remote_launches``) for topology-aware runs; pre-topology v3 entries
#: are likewise stale.
FORMAT_VERSION = 4


class UncacheableSpecError(ValueError):
    """The spec contains a component with no stable canonical description."""


# ------------------------------------------------------------- canonicalisation


def _classpath(cls: type) -> str:
    path = f"{cls.__module__}.{cls.__qualname__}"
    if "<" in path:
        raise UncacheableSpecError(
            f"locally defined class {path!r} has no stable identity; "
            "define it at module level to make specs cacheable"
        )
    return path


def _canon(value: Any) -> str:
    """Render ``value`` as a canonical, collision-averse string.

    Floats go through ``repr`` (exact round-trip); container iteration is
    order-normalised; objects are rendered as *class path + exact instance
    state* so a lossy ``__repr__`` (e.g. the distributions' 3-decimal one)
    can never alias two different specs to one key.
    """
    if value is None or value is True or value is False:
        return repr(value)
    if isinstance(value, float):
        return repr(float(value))
    if isinstance(value, int):
        return repr(int(value))
    if isinstance(value, str):
        return repr(value)
    if isinstance(value, (list, tuple)):
        items = ", ".join(_canon(item) for item in value)
        return f"[{items}]"
    if isinstance(value, Mapping):
        items = ", ".join(
            f"{_canon(key)}: {_canon(value[key])}" for key in sorted(value)
        )
        return f"{{{items}}}"
    if isinstance(value, type):
        return f"class:{_classpath(value)}"
    if dataclasses.is_dataclass(value):
        fields = ", ".join(
            f"{f.name}={_canon(getattr(value, f.name))}"
            for f in dataclasses.fields(value)
        )
        return f"{_classpath(type(value))}({fields})"
    if isinstance(value, DurationDistribution):
        state = ", ".join(
            f"{k}={_canon(v)}" for k, v in sorted(vars(value).items())
        )
        return f"{_classpath(type(value))}({state})"
    if callable(value):
        qualname = getattr(value, "__qualname__", "")
        module = getattr(value, "__module__", "")
        if not qualname or not module or "<" in qualname:
            raise UncacheableSpecError(
                f"{value!r} (a lambda, closure or other non-module-level "
                "callable) has no stable identity; use SchedulerSpec / "
                "TraceSpec / a module-level function to make the spec "
                "cacheable"
            )
        return f"function:{module}.{qualname}"
    raise UncacheableSpecError(
        f"cannot canonically describe {value!r} of type {type(value).__name__}"
    )


#: Digest memo keyed by Trace object: a sweep fingerprints many specs that
#: share one trace, and Traces are immutable, so canonicalising the job
#: list once per object (not once per spec) keeps warm-cache lookups cheap.
_TRACE_DIGEST_MEMO: "weakref.WeakKeyDictionary[Trace, str]" = (
    weakref.WeakKeyDictionary()
)


def _trace_digest(trace: Trace) -> str:
    """Content digest of a materialised trace (one line per job spec)."""
    cached = _TRACE_DIGEST_MEMO.get(trace)
    if cached is not None:
        return cached
    digest = hashlib.sha256()
    for spec in trace:
        digest.update(_canon(spec).encode("utf-8"))
        digest.update(b"\n")
    value = digest.hexdigest()
    _TRACE_DIGEST_MEMO[trace] = value
    return value


def canonical_spec_description(spec: "RunSpec") -> str:  # noqa: F821
    """The canonical, key-defining description of a run spec.

    Every result-influencing field participates; ``tag`` (a grouping
    label) does not.  Raises :class:`UncacheableSpecError` when any
    component lacks a stable description.
    """
    trace = spec.trace
    if isinstance(trace, Trace):
        trace_part = f"trace-content:{_trace_digest(trace)}"
    else:
        # TraceSpec / StreamSpec: dataclasses, canonicalised recursively
        # (factory identity + kwargs + declared job count).
        trace_part = _canon(trace)
    parts = [
        f"format={FORMAT_VERSION}",
        f"trace={trace_part}",
        f"scheduler={_canon(spec.scheduler)}",
        f"num_machines={_canon(spec.num_machines)}",
        f"seed={_canon(spec.seed)}",
        f"machine_speed={_canon(spec.machine_speed)}",
        f"straggler_factory={_canon(spec.straggler_factory)}",
        f"scenario={_canon(spec.scenario)}",
        f"max_time={_canon(spec.max_time)}",
    ]
    return "\n".join(parts)


def run_spec_fingerprint(spec: "RunSpec") -> str:  # noqa: F821
    """SHA-256 cache key of ``spec`` (equal keys <=> equal canonical specs)."""
    description = canonical_spec_description(spec)
    return hashlib.sha256(description.encode("utf-8")).hexdigest()


# ---------------------------------------------------------------- serialisation


def _result_to_payload(result: SimulationResult) -> Dict[str, Any]:
    """JSON-serialisable dump of a result (canonical dict + wall clock)."""
    payload = result.canonical_dict()
    payload["runtime_seconds"] = result.runtime_seconds
    return payload


def _payload_fingerprint(payload: Dict[str, Any]) -> str:
    """Result fingerprint computed from the raw stored payload.

    Equals ``_result_from_payload(payload).fingerprint()`` -- record rows
    round-trip exactly through ``JobRecord``, and ``json.dumps`` renders
    the loaded row lists identically to the tuples ``canonical_dict``
    emits -- but needs only the aggregates plus the raw rows, so integrity
    checks never re-materialise (and re-serialise) a million-record list.
    Missing keys raise ``KeyError``, handled by the caller as corruption.
    """
    canonical = {
        key: payload[key] for key in SimulationResult.CANONICAL_KEYS
    }
    digest = json.dumps(canonical, sort_keys=True)
    return hashlib.sha256(digest.encode("utf-8")).hexdigest()


def _result_from_payload(payload: Dict[str, Any]) -> SimulationResult:
    """Rebuild a :class:`SimulationResult` from :func:`_result_to_payload`."""
    result = SimulationResult(
        scheduler_name=payload["scheduler_name"],
        num_machines=payload["num_machines"],
        total_copies=payload["total_copies"],
        total_tasks=payload["total_tasks"],
        redundant_copies_launched=payload["redundant_copies_launched"],
        wasted_work=payload["wasted_work"],
        useful_work=payload["useful_work"],
        makespan=payload["makespan"],
        over_requests=payload["over_requests"],
        machine_failures=payload["machine_failures"],
        copies_killed_by_failure=payload["copies_killed_by_failure"],
        checkpoint_resumes=payload["checkpoint_resumes"],
        work_saved_by_checkpointing=payload["work_saved_by_checkpointing"],
        straggler_onsets=payload["straggler_onsets"],
        local_launches=payload["local_launches"],
        remote_launches=payload["remote_launches"],
        runtime_seconds=payload["runtime_seconds"],
        seed=payload["seed"],
    )
    # Direct append: a freshly built result has no metric caches to
    # invalidate, so the per-record ``add_record`` bookkeeping is skipped.
    append = result.records.append
    for row in payload["records"]:
        append(JobRecord(*row))
    return result


# -------------------------------------------------------------- advisory locks

#: Name of the per-shard advisory lock file (never a cache entry).
_LOCK_BASENAME = ".lock"

#: Fallback-lock staleness horizon: a ``.lock.excl`` file older than this
#: is treated as an orphan of a crashed process and stolen.
_FALLBACK_LOCK_STALE_SECONDS = 300.0


@contextlib.contextmanager
def _advisory_file_lock(lock_path: Path) -> Iterator[None]:
    """Hold an exclusive advisory lock on ``lock_path`` for the block.

    POSIX: ``fcntl.flock`` on the (created-if-missing) lock file --
    advisory locks attach to the open file description, so threads and
    processes contend alike and a crashed holder releases implicitly.
    Elsewhere: a create-exclusive spin lock on ``<lock_path>.excl`` with a
    staleness horizon so an orphaned lock file cannot wedge the cache
    forever.
    """
    if fcntl is not None:
        fd = os.open(lock_path, os.O_CREAT | os.O_RDWR, 0o644)
        try:
            fcntl.flock(fd, fcntl.LOCK_EX)
            try:
                yield
            finally:
                fcntl.flock(fd, fcntl.LOCK_UN)
        finally:
            os.close(fd)
        return
    # Portable fallback: O_CREAT|O_EXCL is atomic on every mainstream
    # filesystem; poll until the current holder removes the file.
    excl = Path(str(lock_path) + ".excl")
    while True:
        try:
            fd = os.open(excl, os.O_CREAT | os.O_EXCL | os.O_WRONLY, 0o644)
            break
        except FileExistsError:
            try:
                age = time.time() - excl.stat().st_mtime
            except OSError:
                continue  # holder released between open and stat; retry
            if age > _FALLBACK_LOCK_STALE_SECONDS:
                try:
                    excl.unlink()
                except OSError:
                    pass
                continue
            time.sleep(0.01)
    try:
        os.close(fd)
        yield
    finally:
        try:
            excl.unlink()
        except OSError:  # pragma: no cover - already stolen as stale
            pass


# --------------------------------------------------------------------- the store


class ResultsStore:
    """Disk-backed, content-addressed store of simulation results.

    Entries live under ``cache_dir/<key[:2]>/<key>.json`` (sharded so a
    million-cell sweep does not produce a million-entry directory).  Writes
    are atomic (temp file + rename), so a killed sweep never leaves a
    half-written entry that a resume would trust -- and even if it did,
    the load-time fingerprint check would reject it.
    """

    def __init__(self, cache_dir: Union[str, os.PathLike]) -> None:
        self.cache_dir = Path(cache_dir)
        self.cache_dir.mkdir(parents=True, exist_ok=True)
        #: Cache hits served since this store was created.
        self.hits = 0
        #: Lookups that found no (valid) entry.
        self.misses = 0
        #: Entries rejected by the integrity check and treated as misses.
        self.corrupt = 0
        #: Entries written.
        self.writes = 0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ResultsStore({str(self.cache_dir)!r}, hits={self.hits}, "
            f"misses={self.misses})"
        )

    def path_for(self, key: str) -> Path:
        """Filesystem location of the entry with cache key ``key``."""
        return self.cache_dir / key[:2] / f"{key}.json"

    @contextlib.contextmanager
    def shard_lock(self, key: str) -> Iterator[None]:
        """Exclusive advisory lock over ``key``'s shard for the ``with`` block.

        Serialises the miss-then-compute window against every other
        process (and thread) locking the same shard of the same
        ``cache_dir``; see the module docstring's concurrency contract.
        Reads and atomic writes do *not* need the lock -- it exists so
        concurrent computations of one key collapse to a single engine
        run (:meth:`load_or_compute`).
        """
        shard = self.cache_dir / key[:2]
        shard.mkdir(parents=True, exist_ok=True)
        with _advisory_file_lock(shard / _LOCK_BASENAME):
            yield

    def load_or_compute(
        self,
        key: str,
        description: str,
        compute: Callable[[], SimulationResult],
    ) -> Tuple[SimulationResult, bool]:
        """Serve ``key`` from the store, computing it at most once per race.

        Acquires the shard lock, *re-reads* the entry (a concurrent winner
        may have stored it while this caller waited -- the loser must
        reuse that byte-identical result, not recompute), and only on a
        true miss calls ``compute`` and persists its result.  Returns
        ``(result, cache_hit)``.
        """
        with self.shard_lock(key):
            cached = self.load(key)
            if cached is not None:
                return cached, True
            result = compute()
            self.store(key, description, result)
            return result, False

    def load(self, key: str) -> Optional[SimulationResult]:
        """Return the stored result for ``key``, or ``None`` on miss.

        Any unreadable, unparsable, format-mismatched or
        fingerprint-mismatched entry counts as a miss (and as ``corrupt``
        when the file existed); the caller recomputes and overwrites it.
        """
        path = self.path_for(key)
        try:
            raw = path.read_text()
        except OSError:
            self.misses += 1
            return None
        try:
            entry = json.loads(raw)
            if entry["format"] != FORMAT_VERSION:
                raise ValueError(f"format {entry['format']} != {FORMAT_VERSION}")
            # Integrity first, straight off the raw payload: rebuilding the
            # records only to re-serialise them for hashing would walk a
            # large result's record list three times instead of once.
            if _payload_fingerprint(entry["result"]) != entry["fingerprint"]:
                raise ValueError("stored fingerprint does not match content")
            result = _result_from_payload(entry["result"])
        except (ValueError, KeyError, TypeError, IndexError):
            self.corrupt += 1
            self.misses += 1
            return None
        self.hits += 1
        return result

    def store(self, key: str, description: str, result: SimulationResult) -> Path:
        """Atomically persist ``result`` under ``key`` and return its path."""
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        # Build the payload once and fingerprint it directly: going through
        # ``result.fingerprint()`` would render the record rows a second
        # time (``canonical_dict`` per call), which dominates store() cost
        # for large results.  ``_payload_fingerprint`` is defined to equal
        # the result's own fingerprint.
        payload_dict = _result_to_payload(result)
        entry = {
            "format": FORMAT_VERSION,
            "spec": description,
            "fingerprint": _payload_fingerprint(payload_dict),
            "result": payload_dict,
        }
        payload = json.dumps(entry, sort_keys=True)
        fd, tmp_name = tempfile.mkstemp(
            dir=str(path.parent), prefix=f".{key[:8]}-", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w") as handle:
                handle.write(payload)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        self.writes += 1
        return path


# ---------------------------------------------------------- cache maintenance

#: Entry filenames are exactly ``<sha256-hex>.json`` inside a 2-hex shard;
#: everything else in a cache dir (lock files, temp files) is not an entry.
_ENTRY_NAME_RE = re.compile(r"^[0-9a-f]{64}\.json$")


def _iter_entry_paths(cache_dir: Path) -> Iterator[Path]:
    """Every cache-entry file under ``cache_dir``, sorted for determinism."""
    if not cache_dir.is_dir():
        return
    for shard in sorted(cache_dir.iterdir()):
        if not (shard.is_dir() and re.fullmatch(r"[0-9a-f]{2}", shard.name)):
            continue
        for path in sorted(shard.iterdir()):
            if _ENTRY_NAME_RE.match(path.name):
                yield path


def _entry_format(path: Path) -> Optional[int]:
    """The entry's ``format`` version, or ``None`` when unreadable."""
    try:
        entry = json.loads(path.read_text())
        return int(entry["format"])
    except (OSError, ValueError, KeyError, TypeError):
        return None


def cache_stats(cache_dir: Union[str, os.PathLike]) -> Dict[str, Any]:
    """Inventory of an existing ``cache_dir`` (the ``cache stats`` command).

    Returns entry count, total bytes, a histogram of entry format
    versions (key ``"unreadable"`` for files that do not parse as
    entries), and how many entries are *stale* -- readable but written
    under a format other than the current :data:`FORMAT_VERSION`, so
    they can only ever miss.
    """
    cache_dir = Path(cache_dir)
    entries = 0
    total_bytes = 0
    formats: Dict[str, int] = {}
    stale = 0
    for path in _iter_entry_paths(cache_dir):
        entries += 1
        try:
            total_bytes += path.stat().st_size
        except OSError:
            pass
        version = _entry_format(path)
        label = "unreadable" if version is None else str(version)
        formats[label] = formats.get(label, 0) + 1
        if version != FORMAT_VERSION:
            stale += 1
    return {
        "cache_dir": str(cache_dir),
        "entries": entries,
        "total_bytes": total_bytes,
        "formats": formats,
        "format_version": FORMAT_VERSION,
        "stale": stale,
    }


def prune_stale(cache_dir: Union[str, os.PathLike]) -> Dict[str, Any]:
    """Delete stale entries (``format != FORMAT_VERSION``) from ``cache_dir``.

    Unreadable entry files are pruned too -- like format-mismatched ones
    they can never be hits, only disk weight.  Each shard is pruned under
    its advisory lock so a concurrent writer's fresh entry is never
    swept.  Returns ``{"scanned", "removed", "removed_bytes", "kept"}``.
    """
    cache_dir = Path(cache_dir)
    scanned = removed = removed_bytes = 0
    for path in _iter_entry_paths(cache_dir):
        scanned += 1
        with _advisory_file_lock(path.parent / _LOCK_BASENAME):
            version = _entry_format(path)
            if version == FORMAT_VERSION:
                continue
            try:
                size = path.stat().st_size
                path.unlink()
            except OSError:
                continue
        removed += 1
        removed_bytes += size
    return {
        "cache_dir": str(cache_dir),
        "scanned": scanned,
        "removed": removed,
        "removed_bytes": removed_bytes,
        "kept": scanned - removed,
    }
