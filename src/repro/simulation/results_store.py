"""Content-addressed results store: skip simulation runs already computed.

Replication sweeps re-execute the same ``(trace, scheduler, scenario,
seed)`` cells over and over -- across figure drivers, across CLI
invocations, across interrupted-and-restarted sweeps.  Every
:class:`~repro.simulation.experiment_runner.RunSpec` is a pure function of
its fields (the seeding contract), so its
:class:`~repro.simulation.metrics.SimulationResult` can be cached on disk
and replayed instead of recomputed.

Keying
------
:func:`run_spec_fingerprint` derives a SHA-256 key from a *canonical
description* of the spec: every field that can influence the result --
trace contents or recipe, scheduler class + kwargs, seed, cluster size and
speed, scenario (including every nested process spec), straggler factory,
max_time -- rendered with exact float round-tripping (``repr``), bypassing
any class ``__repr__`` that rounds.  The ``tag`` field is *excluded*: it is
a grouping label and does not affect execution.  Change any other field --
even a nested ``ScenarioSpec`` process parameter -- and the key changes;
keep them identical and a sweep resumes from cache.

Specs that cannot be described stably (lambdas, closures, locally defined
classes) raise :class:`UncacheableSpecError`; the experiment runner treats
such specs as cache-bypass and simply executes them.

Integrity
---------
A cache entry stores the canonical spec description and the result's
:meth:`~repro.simulation.metrics.SimulationResult.fingerprint`.  On load
the result is rebuilt and its fingerprint recomputed; any mismatch (bit
rot, truncated write, hash collision, format drift) makes the entry a
*miss* -- corrupted entries are recomputed, never trusted.  A hit is
therefore byte-equal to the result a fresh run would produce (the
wall-clock ``runtime_seconds`` of the original run is preserved; it is
excluded from the fingerprint by design).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import tempfile
import weakref
from pathlib import Path
from typing import Any, Dict, Mapping, Optional, Union

from repro.simulation.metrics import JobRecord, SimulationResult
from repro.workload.distributions import DurationDistribution
from repro.workload.trace import Trace

__all__ = [
    "UncacheableSpecError",
    "canonical_spec_description",
    "run_spec_fingerprint",
    "ResultsStore",
]

#: Bump when the canonical description or the entry format changes
#: incompatibly; old entries then miss (and are recomputed) instead of
#: being misinterpreted.  Version 2 added
#: ``SimulationResult.redundant_copies_launched`` to the payload.
#: Version 3 added the stage-DAG fields (``JobRecord.num_stages`` in every
#: record row, ``checkpoint_resumes`` and ``work_saved_by_checkpointing``)
#: to ``canonical_dict``; v2 entries are detected as stale and recomputed
#: rather than rebuilt with silently-defaulted fields.
#: Version 4 added the rack-locality counters (``local_launches`` and
#: ``remote_launches``) for topology-aware runs; pre-topology v3 entries
#: are likewise stale.
FORMAT_VERSION = 4


class UncacheableSpecError(ValueError):
    """The spec contains a component with no stable canonical description."""


# ------------------------------------------------------------- canonicalisation


def _classpath(cls: type) -> str:
    path = f"{cls.__module__}.{cls.__qualname__}"
    if "<" in path:
        raise UncacheableSpecError(
            f"locally defined class {path!r} has no stable identity; "
            "define it at module level to make specs cacheable"
        )
    return path


def _canon(value: Any) -> str:
    """Render ``value`` as a canonical, collision-averse string.

    Floats go through ``repr`` (exact round-trip); container iteration is
    order-normalised; objects are rendered as *class path + exact instance
    state* so a lossy ``__repr__`` (e.g. the distributions' 3-decimal one)
    can never alias two different specs to one key.
    """
    if value is None or value is True or value is False:
        return repr(value)
    if isinstance(value, float):
        return repr(float(value))
    if isinstance(value, int):
        return repr(int(value))
    if isinstance(value, str):
        return repr(value)
    if isinstance(value, (list, tuple)):
        items = ", ".join(_canon(item) for item in value)
        return f"[{items}]"
    if isinstance(value, Mapping):
        items = ", ".join(
            f"{_canon(key)}: {_canon(value[key])}" for key in sorted(value)
        )
        return f"{{{items}}}"
    if isinstance(value, type):
        return f"class:{_classpath(value)}"
    if dataclasses.is_dataclass(value):
        fields = ", ".join(
            f"{f.name}={_canon(getattr(value, f.name))}"
            for f in dataclasses.fields(value)
        )
        return f"{_classpath(type(value))}({fields})"
    if isinstance(value, DurationDistribution):
        state = ", ".join(
            f"{k}={_canon(v)}" for k, v in sorted(vars(value).items())
        )
        return f"{_classpath(type(value))}({state})"
    if callable(value):
        qualname = getattr(value, "__qualname__", "")
        module = getattr(value, "__module__", "")
        if not qualname or not module or "<" in qualname:
            raise UncacheableSpecError(
                f"{value!r} (a lambda, closure or other non-module-level "
                "callable) has no stable identity; use SchedulerSpec / "
                "TraceSpec / a module-level function to make the spec "
                "cacheable"
            )
        return f"function:{module}.{qualname}"
    raise UncacheableSpecError(
        f"cannot canonically describe {value!r} of type {type(value).__name__}"
    )


#: Digest memo keyed by Trace object: a sweep fingerprints many specs that
#: share one trace, and Traces are immutable, so canonicalising the job
#: list once per object (not once per spec) keeps warm-cache lookups cheap.
_TRACE_DIGEST_MEMO: "weakref.WeakKeyDictionary[Trace, str]" = (
    weakref.WeakKeyDictionary()
)


def _trace_digest(trace: Trace) -> str:
    """Content digest of a materialised trace (one line per job spec)."""
    cached = _TRACE_DIGEST_MEMO.get(trace)
    if cached is not None:
        return cached
    digest = hashlib.sha256()
    for spec in trace:
        digest.update(_canon(spec).encode("utf-8"))
        digest.update(b"\n")
    value = digest.hexdigest()
    _TRACE_DIGEST_MEMO[trace] = value
    return value


def canonical_spec_description(spec: "RunSpec") -> str:  # noqa: F821
    """The canonical, key-defining description of a run spec.

    Every result-influencing field participates; ``tag`` (a grouping
    label) does not.  Raises :class:`UncacheableSpecError` when any
    component lacks a stable description.
    """
    trace = spec.trace
    if isinstance(trace, Trace):
        trace_part = f"trace-content:{_trace_digest(trace)}"
    else:
        # TraceSpec / StreamSpec: dataclasses, canonicalised recursively
        # (factory identity + kwargs + declared job count).
        trace_part = _canon(trace)
    parts = [
        f"format={FORMAT_VERSION}",
        f"trace={trace_part}",
        f"scheduler={_canon(spec.scheduler)}",
        f"num_machines={_canon(spec.num_machines)}",
        f"seed={_canon(spec.seed)}",
        f"machine_speed={_canon(spec.machine_speed)}",
        f"straggler_factory={_canon(spec.straggler_factory)}",
        f"scenario={_canon(spec.scenario)}",
        f"max_time={_canon(spec.max_time)}",
    ]
    return "\n".join(parts)


def run_spec_fingerprint(spec: "RunSpec") -> str:  # noqa: F821
    """SHA-256 cache key of ``spec`` (equal keys <=> equal canonical specs)."""
    description = canonical_spec_description(spec)
    return hashlib.sha256(description.encode("utf-8")).hexdigest()


# ---------------------------------------------------------------- serialisation


def _result_to_payload(result: SimulationResult) -> Dict[str, Any]:
    """JSON-serialisable dump of a result (canonical dict + wall clock)."""
    payload = result.canonical_dict()
    payload["runtime_seconds"] = result.runtime_seconds
    return payload


def _result_from_payload(payload: Dict[str, Any]) -> SimulationResult:
    """Rebuild a :class:`SimulationResult` from :func:`_result_to_payload`."""
    result = SimulationResult(
        scheduler_name=payload["scheduler_name"],
        num_machines=payload["num_machines"],
        total_copies=payload["total_copies"],
        total_tasks=payload["total_tasks"],
        redundant_copies_launched=payload["redundant_copies_launched"],
        wasted_work=payload["wasted_work"],
        useful_work=payload["useful_work"],
        makespan=payload["makespan"],
        over_requests=payload["over_requests"],
        machine_failures=payload["machine_failures"],
        copies_killed_by_failure=payload["copies_killed_by_failure"],
        checkpoint_resumes=payload["checkpoint_resumes"],
        work_saved_by_checkpointing=payload["work_saved_by_checkpointing"],
        straggler_onsets=payload["straggler_onsets"],
        local_launches=payload["local_launches"],
        remote_launches=payload["remote_launches"],
        runtime_seconds=payload["runtime_seconds"],
        seed=payload["seed"],
    )
    for row in payload["records"]:
        result.add_record(JobRecord(*row))
    return result


# --------------------------------------------------------------------- the store


class ResultsStore:
    """Disk-backed, content-addressed store of simulation results.

    Entries live under ``cache_dir/<key[:2]>/<key>.json`` (sharded so a
    million-cell sweep does not produce a million-entry directory).  Writes
    are atomic (temp file + rename), so a killed sweep never leaves a
    half-written entry that a resume would trust -- and even if it did,
    the load-time fingerprint check would reject it.
    """

    def __init__(self, cache_dir: Union[str, os.PathLike]) -> None:
        self.cache_dir = Path(cache_dir)
        self.cache_dir.mkdir(parents=True, exist_ok=True)
        #: Cache hits served since this store was created.
        self.hits = 0
        #: Lookups that found no (valid) entry.
        self.misses = 0
        #: Entries rejected by the integrity check and treated as misses.
        self.corrupt = 0
        #: Entries written.
        self.writes = 0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ResultsStore({str(self.cache_dir)!r}, hits={self.hits}, "
            f"misses={self.misses})"
        )

    def path_for(self, key: str) -> Path:
        """Filesystem location of the entry with cache key ``key``."""
        return self.cache_dir / key[:2] / f"{key}.json"

    def load(self, key: str) -> Optional[SimulationResult]:
        """Return the stored result for ``key``, or ``None`` on miss.

        Any unreadable, unparsable, format-mismatched or
        fingerprint-mismatched entry counts as a miss (and as ``corrupt``
        when the file existed); the caller recomputes and overwrites it.
        """
        path = self.path_for(key)
        try:
            raw = path.read_text()
        except OSError:
            self.misses += 1
            return None
        try:
            entry = json.loads(raw)
            if entry["format"] != FORMAT_VERSION:
                raise ValueError(f"format {entry['format']} != {FORMAT_VERSION}")
            result = _result_from_payload(entry["result"])
            if result.fingerprint() != entry["fingerprint"]:
                raise ValueError("stored fingerprint does not match content")
        except (ValueError, KeyError, TypeError, IndexError):
            self.corrupt += 1
            self.misses += 1
            return None
        self.hits += 1
        return result

    def store(self, key: str, description: str, result: SimulationResult) -> Path:
        """Atomically persist ``result`` under ``key`` and return its path."""
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        entry = {
            "format": FORMAT_VERSION,
            "spec": description,
            "fingerprint": result.fingerprint(),
            "result": _result_to_payload(result),
        }
        payload = json.dumps(entry, sort_keys=True)
        fd, tmp_name = tempfile.mkstemp(
            dir=str(path.parent), prefix=f".{key[:8]}-", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w") as handle:
                handle.write(payload)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        self.writes += 1
        return path
