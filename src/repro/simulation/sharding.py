"""Time-epoch sharding: split one long streamed run into cacheable shards.

A single million-job simulation is one monolithic engine run: it cannot be
parallelised, and an interrupted run restarts from zero.  This module
splits such a run into ``k`` contiguous **job-id windows** of its stream
(the shard key is the arrival epoch: window ``i`` covers jobs
``[start_i, start_i + count_i)``, arriving at ``job_id * inter_arrival``),
simulates every window as an ordinary independent
:class:`~repro.simulation.experiment_runner.RunSpec`, and merges the shard
results into one :class:`~repro.simulation.metrics.SimulationResult` that
is **bit-identical** to the unsharded run -- same fingerprint, same
records, same counters.

Because every shard is a plain ``RunSpec`` (its trace is a
:func:`~repro.workload.stream.stream_uniform_window` recipe), shards flow
through the existing content-addressed results store: each shard is
fingerprinted by :func:`~repro.simulation.results_store.run_spec_fingerprint`
and persisted individually, so an interrupted sharded run **resumes** --
already-computed shards are cache hits and only the missing windows touch
the engine.  Shards also fan out over the
:class:`~repro.simulation.experiment_runner.ExperimentRunner` pool like any
other spec batch.

Soundness envelope
------------------
Bit-identity of the merge is *proved*, not hoped for, which restricts the
supported runs.  Sharding applies only when (statically checked by
:func:`plan_shards`):

* the trace is a :class:`~repro.workload.stream.StreamSpec` over
  :func:`~repro.workload.stream.stream_uniform_jobs` with
  ``tasks_per_job=1``, ``reduce_tasks_per_job=0`` and ``inter_arrival > 0``
  (deterministic durations: the engine's workload RNG is never consumed,
  so a fresh per-shard generator changes nothing);
* the scheduler launches single copies only (redundancy policy ``"none"``,
  no ticks), so no clones race and no scheduler RNG is consumed;
* there is no per-copy straggler model and no dynamic-straggler scenario
  process (both consume RNG streams mid-run); heterogeneous machine
  speeds and machine failures *are* supported -- their randomness comes
  from dedicated per-``(seed, machine)`` streams that replay identically
  in every shard; and ``max_time`` is unset.

and only when (dynamically checked by replaying the merged records against
the precomputed machine-event timeline, see ``_validate``):

* the run **serializes**: every job completes before the next arrives, so
  each shard window is an independent episode of the global run;
* no machine repair fires while a job is busy and no failure kills a
  running copy (idle-machine failures between jobs are fine: removing a
  machine from the middle of the free list commutes with the balanced
  pop/push of a serialized job, but a repair *appends* to the list and a
  kill re-dispatches -- either one interleaved with a busy interval would
  let shard-local free-list order diverge from the global run);
* every job's completion time equals ``arrival + duration / speed(machine)``
  for the machine the shared free-list replay assigns it (launches happen
  at arrival, never queued).

If any gate or validation fails, :func:`run_sharded` falls back to the
unsharded run (still through the runner, so still cached) and reports the
reason -- the caller always gets a correct result.

Merge contract
--------------
Records are concatenated in shard order (== global completion order, by
the serialization check).  Integer counters (``total_copies``,
``total_tasks``, ``redundant_copies_launched``, ``over_requests``,
``checkpoint_resumes``) are summed.  ``useful_work`` is re-accumulated by
the same left-to-right float fold the engine performs -- one
``completion - arrival`` term per record -- after checking that each
shard's own fold reproduces its reported ``useful_work`` exactly (plain
summing of shard totals would regroup the float additions and drift by
ULPs).  ``wasted_work`` and ``copies_killed_by_failure`` must be zero in
every shard.  ``makespan``, ``machine_failures`` and ``straggler_onsets``
come from the **last** shard: it replays the full job-independent machine
timeline up to the global makespan, exactly as the unsharded run does.
``runtime_seconds`` (excluded from fingerprints) is summed.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.scenarios import machine_process_rng
from repro.simulation.experiment_runner import ExperimentRunner, RunSpec
from repro.simulation.metrics import JobRecord, SimulationResult
from repro.workload.stream import (
    StreamSpec,
    stream_uniform_jobs,
    stream_uniform_window,
)

__all__ = ["ShardingUnsupported", "ShardedRun", "plan_shards", "run_sharded"]


class ShardingUnsupported(ValueError):
    """The run spec falls outside the sharding soundness envelope."""


@dataclass
class ShardedRun:
    """Outcome of :func:`run_sharded`.

    ``result`` is always a correct, complete simulation result;
    ``sharded`` tells whether it came from the shard-and-merge path or
    from the unsharded fallback (``fallback_reason`` says why).
    ``run_stats`` accumulates the runner's executed/cache-hit counters
    across every :meth:`~repro.simulation.experiment_runner
    .ExperimentRunner.run` call this invocation made.
    """

    result: SimulationResult
    sharded: bool
    num_shards: int
    fallback_reason: Optional[str]
    run_stats: Dict[str, int]


# ------------------------------------------------------------------ planning


def _static_gate(spec: RunSpec, num_shards: int) -> Optional[str]:
    """Reason the spec cannot be sharded, or ``None`` when the gates pass."""
    if num_shards < 1:
        return f"num_shards must be >= 1, got {num_shards}"
    trace = spec.trace
    if not isinstance(trace, StreamSpec):
        return "trace is not a StreamSpec (sharding slices stream windows)"
    if trace.factory is not stream_uniform_jobs:
        return (
            "stream factory is not stream_uniform_jobs (only deterministic "
            "uniform streams keep the engine RNG unconsumed)"
        )
    kwargs = dict(trace.kwargs)
    if kwargs.get("tasks_per_job", 10) != 1:
        return "tasks_per_job != 1 (multi-task jobs break the exact merge)"
    if kwargs.get("reduce_tasks_per_job", 2) != 0:
        return "reduce_tasks_per_job != 0 (multi-stage jobs break the exact merge)"
    if kwargs.get("inter_arrival", 0.0) <= 0:
        return "inter_arrival must be positive (shards split arrival epochs)"
    if spec.straggler_factory is not None:
        return "per-copy straggler models consume the engine RNG"
    if spec.max_time is not None:
        return "max_time truncation does not decompose across shards"
    scenario = spec.scenario
    if scenario is not None and scenario.stragglers is not None:
        return "dynamic-straggler scenarios are outside the sharding envelope"
    try:
        scheduler = spec.scheduler()
    except Exception as exc:  # noqa: BLE001 - any build failure disqualifies
        return f"could not build scheduler to inspect it: {exc}"
    redundancy = getattr(scheduler, "redundancy", None)
    if redundancy is None or getattr(redundancy, "name", None) != "none":
        return "scheduler's redundancy policy is not 'none' (clones may race)"
    if getattr(scheduler, "tick_interval", None) is not None:
        return "tick-driven schedulers are outside the sharding envelope"
    return None


def plan_shards(spec: RunSpec, num_shards: int) -> List[RunSpec]:
    """Split ``spec`` into contiguous-window shard specs (balanced sizes).

    Each returned spec is identical to ``spec`` except that its trace is
    the :func:`~repro.workload.stream.stream_uniform_window` recipe of one
    job-id window (and its ``tag`` names the shard).  Raises
    :class:`ShardingUnsupported` when ``spec`` fails the static gates of
    the soundness envelope (see the module docstring).
    """
    reason = _static_gate(spec, num_shards)
    if reason is not None:
        raise ShardingUnsupported(reason)
    stream = spec.trace
    num_jobs = stream.num_jobs
    num_shards = min(num_shards, num_jobs)
    base, remainder = divmod(num_jobs, num_shards)
    shards: List[RunSpec] = []
    start = 0
    for index in range(num_shards):
        count = base + (1 if index < remainder else 0)
        kwargs = dict(stream.kwargs)
        kwargs["start"] = start
        window = StreamSpec(
            factory=stream_uniform_window,
            num_jobs=count,
            kwargs=kwargs,
            name=f"{stream.name}[{start}:{start + count}]",
        )
        shards.append(
            replace(spec, trace=window, tag=("shard", index, num_shards))
        )
        start += count
    return shards


# ------------------------------------------------------------------ validation

#: Replay priorities, mirroring the engine's same-timestamp event order
#: (finish < repair < failure < arrival; see repro.simulation.events).
_FINISH, _REPAIR, _FAILURE, _ARRIVAL = 0, 1, 2, 5


def _machine_speeds(spec: RunSpec) -> List[float]:
    """Per-machine base speeds, exactly as the engine constructs them."""
    scenario = spec.scenario
    if scenario is not None:
        sampled = scenario.machine_speeds(spec.num_machines, spec.seed)
        if sampled is not None:
            return [float(s) for s in sampled * spec.machine_speed]
    return [spec.machine_speed] * spec.num_machines


def _machine_events(spec: RunSpec, horizon: float) -> List[tuple]:
    """Failure/repair timeline up to ``horizon``, replayed job-independently.

    Each machine's events come from its dedicated
    :func:`~repro.scenarios.machine_process_rng` stream in the engine's
    fixed draw order (uptime, then repair, alternating), so the absolute
    event times are identical in every shard and in the unsharded run.
    """
    scenario = spec.scenario
    if scenario is None or scenario.failures is None:
        return []
    failures = scenario.failures
    events: List[tuple] = []
    for machine_id in range(spec.num_machines):
        rng = machine_process_rng(spec.seed, machine_id)
        time = failures.draw_uptime(rng)
        while time <= horizon:
            events.append((time, _FAILURE, machine_id))
            repair_at = time + failures.draw_repair(rng)
            if repair_at > horizon:
                break
            events.append((repair_at, _REPAIR, machine_id))
            time = repair_at + failures.draw_uptime(rng)
    return events


def _validate(
    spec: RunSpec,
    shard_results: Sequence[SimulationResult],
    records: List[JobRecord],
) -> Tuple[Optional[str], float]:
    """Reason the shard results cannot be merged (or ``None``), plus the fold.

    Performs the dynamic half of the soundness envelope: per-shard counter
    and useful-work decomposition checks, global serialization, and the
    shared free-list replay against the precomputed machine timeline.
    ``records`` must be empty on entry; on a ``None`` reason it holds the
    merged (shard-order concatenated) record list and the returned float
    is the engine's left-to-right useful-work fold over it -- computed as
    a strictly sequential ``np.add.accumulate`` over the per-record
    ``completion - arrival`` terms, which is bit-identical to the
    engine's scalar fold (accumulate must produce every partial sum, so
    it cannot regroup) -- letting the merge adopt both without walking
    the per-shard lists again.

    The order-independent predicates (job-id contiguity, serialization,
    the fixed ``arrival + duration/speed`` completion law when no machine
    event fires) are evaluated as whole-array float64 comparisons;
    accept/reject decisions are identical to the scalar replay, only the
    Python loop is gone.  The scalar replay remains for timelines with
    failure/repair events, where free-list order is genuinely stateful.
    """
    arrival_parts: List[np.ndarray] = []
    completion_parts: List[np.ndarray] = []
    for index, result in enumerate(shard_results):
        if result.wasted_work != 0.0:
            return f"shard {index} recorded wasted work (killed copies)", 0.0
        if result.copies_killed_by_failure:
            return (
                f"shard {index}: a machine failure killed a running copy",
                0.0,
            )
        if result.redundant_copies_launched:
            return f"shard {index} launched redundant copies", 0.0
        if result.straggler_onsets:
            return f"shard {index} recorded straggler onsets", 0.0
        shard_records = result.records
        count = len(shard_records)
        arrivals = np.fromiter(
            (record.arrival_time for record in shard_records),
            np.float64,
            count,
        )
        completions = np.fromiter(
            (record.completion_time for record in shard_records),
            np.float64,
            count,
        )
        fold = (
            float(np.add.accumulate(completions - arrivals)[-1])
            if count
            else 0.0
        )
        if fold != result.useful_work:
            return (
                f"shard {index}: useful work does not decompose per record "
                "(a launch was queued past its arrival)",
                0.0,
            )
        arrival_parts.append(arrivals)
        completion_parts.append(completions)
        records.extend(shard_records)
    if not records:
        return None, 0.0
    count = len(records)
    job_ids = np.fromiter(
        (record.job_id for record in records), np.int64, count
    )
    if not (job_ids == np.arange(count)).all():
        return "merged records are not the contiguous job-id sequence", 0.0
    arrivals = np.concatenate(arrival_parts)
    completions = np.concatenate(completion_parts)
    overlap = completions[:-1] > arrivals[1:]
    if overlap.any():
        index = int(np.argmax(overlap))
        previous, record = records[index], records[index + 1]
        return (
            f"run does not serialize: job {previous.job_id} completes at "
            f"{previous.completion_time} after job {record.job_id} "
            f"arrives at {record.arrival_time}",
            0.0,
        )
    useful = float(np.add.accumulate(completions - arrivals)[-1])
    speeds = _machine_speeds(spec)
    mean_duration = float(dict(spec.trace.kwargs).get("mean_duration", 10.0))
    horizon = records[-1].completion_time
    events = _machine_events(spec, horizon)
    if not events:
        # No failure/repair ever fires, so the free-list replay collapses:
        # the list starts ``[M-1 .. 0]``, every launch pops machine 0 and
        # every finish pushes it back before the next arrival (proved by
        # the serialization check above), hence every job runs on machine
        # 0 and the whole replay is one array comparison.
        duration = mean_duration / speeds[0]
        wrong = completions != arrivals + duration
        if wrong.any():
            index = int(np.argmax(wrong))
            record = records[index]
            return (
                f"job {record.job_id} on machine 0: completion "
                f"{record.completion_time} != expected "
                f"{record.arrival_time + duration}",
                0.0,
            )
        return None, useful

    # Shared free-list replay: machine events and job arrivals/completions
    # interleaved in the engine's (time, priority) order.  This is the one
    # state all shards implicitly share; any interleaving that could make
    # a shard-local free list diverge from the global run is rejected.
    for index, record in enumerate(records):
        events.append((record.arrival_time, _ARRIVAL, index))
        events.append((record.completion_time, _FINISH, index))
    events.sort()
    free = list(range(spec.num_machines - 1, -1, -1))
    busy_index: Optional[int] = None
    busy_machine: Optional[int] = None
    for time, priority, payload in events:
        if priority == _FINISH:
            if busy_index != payload:
                return (
                    "replay desynchronized: completion of a job not running",
                    0.0,
                )
            free.append(busy_machine)
            busy_index = None
            busy_machine = None
        elif priority == _REPAIR:
            if busy_index is not None:
                return (
                    f"machine {payload} repaired at t={time} while job "
                    f"{records[busy_index].job_id} was busy (free-list order "
                    "would diverge between shards)",
                    0.0,
                )
            free.append(payload)
        elif priority == _FAILURE:
            if payload == busy_machine:
                return (
                    f"machine {payload} failed at t={time} under job "
                    f"{records[busy_index].job_id}",
                    0.0,
                )
            if payload not in free:
                return (
                    "replay desynchronized: failure of a machine not free",
                    0.0,
                )
            free.remove(payload)
        else:  # _ARRIVAL
            if busy_index is not None:
                return (
                    "replay desynchronized: arrival while a job was busy",
                    0.0,
                )
            if not free:
                return (
                    f"no free machine at job {records[payload].job_id}'s "
                    "arrival (launch would queue)",
                    0.0,
                )
            machine_id = free.pop()
            record = records[payload]
            expected = record.arrival_time + mean_duration / speeds[machine_id]
            if record.completion_time != expected:
                return (
                    f"job {record.job_id} on machine {machine_id}: completion "
                    f"{record.completion_time} != expected {expected}",
                    0.0,
                )
            busy_index = payload
            busy_machine = machine_id
    if busy_index is not None:
        return "replay desynchronized: run ended with a job still busy", 0.0
    return None, useful


# ------------------------------------------------------------------ merge


def _merge(
    spec: RunSpec,
    shard_results: Sequence[SimulationResult],
    records: List[JobRecord],
    useful_work: float,
) -> SimulationResult:
    """Combine validated shard results per the module's merge contract.

    ``records`` and ``useful_work`` are the concatenated record list and
    the left-to-right useful-work fold `_validate` already produced; the
    merged result adopts both directly (aggregate counters come from the
    shard results alone), so the million-record lists are never walked or
    copied again.
    """
    last = shard_results[-1]
    merged = SimulationResult(
        scheduler_name=last.scheduler_name,
        num_machines=last.num_machines,
        total_copies=sum(r.total_copies for r in shard_results),
        total_tasks=sum(r.total_tasks for r in shard_results),
        redundant_copies_launched=sum(
            r.redundant_copies_launched for r in shard_results
        ),
        wasted_work=0.0,
        makespan=last.makespan,
        over_requests=sum(r.over_requests for r in shard_results),
        machine_failures=last.machine_failures,
        copies_killed_by_failure=0,
        checkpoint_resumes=sum(r.checkpoint_resumes for r in shard_results),
        work_saved_by_checkpointing=0.0,
        straggler_onsets=last.straggler_onsets,
        runtime_seconds=sum(r.runtime_seconds for r in shard_results),
        seed=spec.seed,
    )
    # Useful work is the validator's re-accumulation of the engine's own
    # left-to-right fold over per-record terms; summing shard totals would
    # regroup the float additions (validation proved each shard's fold
    # matches its total).
    merged.useful_work = useful_work
    merged.records = records
    return merged


# ------------------------------------------------------------------ driver


def run_sharded(
    spec: RunSpec,
    num_shards: int,
    *,
    runner: Optional[ExperimentRunner] = None,
) -> ShardedRun:
    """Execute ``spec`` as ``num_shards`` independent windows and merge.

    Shard specs run through ``runner`` (default: a serial
    :class:`~repro.simulation.experiment_runner.ExperimentRunner`), so
    they inherit its pool fan-out, batched dispatch and results cache --
    with a cache configured, a re-run (or a partially interrupted run)
    serves finished shards from disk and executes only the rest.  On any
    gate or validation failure the unsharded spec is executed instead
    (also through ``runner``) and the reason is reported; the returned
    result is correct either way and, on the sharded path, bit-identical
    to the unsharded run (equal
    :meth:`~repro.simulation.metrics.SimulationResult.fingerprint`).
    """
    if runner is None:
        runner = ExperimentRunner(workers=1)
    stats = {"executed": 0, "cache_hits": 0, "uncacheable": 0}

    def _accumulate() -> None:
        for key in stats:
            stats[key] += runner.last_run_stats.get(key, 0)

    try:
        shard_specs = plan_shards(spec, num_shards)
    except ShardingUnsupported as exc:
        result = runner.run([spec])[0]
        _accumulate()
        return ShardedRun(result, False, num_shards, str(exc), stats)
    shard_results = runner.run(shard_specs)
    _accumulate()
    records: List[JobRecord] = []
    reason, useful_work = _validate(spec, shard_results, records)
    if reason is not None:
        result = runner.run([spec])[0]
        _accumulate()
        return ShardedRun(result, False, len(shard_specs), reason, stats)
    merged = _merge(spec, shard_results, records, useful_work)
    return ShardedRun(merged, True, len(shard_specs), None, stats)
