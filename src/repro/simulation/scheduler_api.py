"""The interface between the simulation engine and scheduling policies.

A scheduler never mutates simulation state directly.  It observes the
cluster through a :class:`SchedulerView` (time, free machines, alive jobs,
progress of running copies, observed durations of completed copies) and
returns a list of :class:`LaunchRequest` objects; the engine places the
requested copies on free machines.

The view deliberately does *not* expose the sampled workload of running
copies: like a real cluster, a scheduler can observe progress and history,
not the future.  The duration *distribution moments* (``mean``/``std`` of
each job phase) are available through the job specs, matching the paper's
assumption that only the first and second moments are known a priori.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import TYPE_CHECKING, Iterator, List, Optional, Sequence, Union

from repro.workload.job import Job, Phase, Task, TaskCopy

if TYPE_CHECKING:  # pragma: no cover - avoid an import cycle at runtime
    from repro.policies import (
        AllocationPolicy,
        OrderingPolicy,
        RedundancyPolicy,
    )
    from repro.simulation.engine import SimulationEngine

__all__ = ["LaunchRequest", "SchedulerView", "Scheduler", "ComposedScheduler"]


class LaunchRequest:
    """A scheduler's request to launch ``num_copies`` copies of ``task`` now."""

    __slots__ = ("task", "num_copies")

    def __init__(self, task: Task, num_copies: int = 1) -> None:
        if num_copies <= 0:
            raise ValueError(f"num_copies must be positive, got {num_copies}")
        self.task = task
        self.num_copies = num_copies

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"LaunchRequest(task={self.task.task_id!r}, num_copies={self.num_copies})"


class SchedulerView:
    """Read-only window onto the running simulation."""

    def __init__(self, engine: "SimulationEngine") -> None:
        self._engine = engine

    # -- global state -----------------------------------------------------------

    @property
    def time(self) -> float:
        """Current simulation time."""
        return self._engine.now

    @property
    def num_machines(self) -> int:
        """``M`` -- cluster size."""
        return self._engine.cluster.num_machines

    @property
    def num_free_machines(self) -> int:
        """Machines idle (and up) at this instant."""
        # Direct free-list length: this property runs once per decision
        # point, so the num_free property hop is skipped.
        return len(self._engine.cluster._free_ids)

    @property
    def num_down_machines(self) -> int:
        """Machines currently failed (0 outside failure scenarios)."""
        return self._engine.cluster.num_down

    def num_running(self, phase: Phase) -> int:
        """``M(t)`` / ``R(t)`` -- machines running copies of the given phase."""
        return self._engine.cluster.num_running(phase)

    def machine_speed(self, machine_id: int) -> float:
        """Base speed of one machine (heterogeneous scenarios expose these)."""
        return self._engine.cluster.speed_of(machine_id)

    # -- topology (rack locality) -------------------------------------------------

    @property
    def topology_active(self) -> bool:
        """True when a non-degenerate rack topology shapes this run.

        Degenerate topologies (one rack, or no remote slowdown) answer
        False so that placement-aware policies fall back to their flat
        behaviour and stay bit-identical to ``topology=None`` runs.
        """
        return self._engine._topology_active

    @property
    def num_racks(self) -> int:
        """Number of racks (1 when no topology is active)."""
        return self._engine._num_racks

    @property
    def machine_racks(self) -> List[int]:
        """The machine->rack map (schedulers must not mutate it).

        Only valid while :attr:`topology_active`; flat runs raise rather
        than hand out a fabricated map.
        """
        rack_of = self._engine._rack_of
        if rack_of is None:
            raise RuntimeError("machine_racks queried without an active topology")
        return rack_of

    def rack_of(self, machine_id: int) -> int:
        """Rack hosting ``machine_id`` (0 when no topology is active)."""
        rack_of = self._engine._rack_of
        return 0 if rack_of is None else rack_of[machine_id]

    def free_machine_ids(self) -> List[int]:
        """Snapshot of the free machines, in engine placement order.

        The engine serves placements from the *end* of this list; policies
        that simulate placement (delay scheduling) copy it and drain it the
        same way.
        """
        return list(self._engine.cluster._free_ids)

    def locality_hint(self, task: Task) -> Optional[bool]:
        """Whether ``task`` could launch on its preferred rack right now.

        ``None`` when no topology is active (placement has no locality
        dimension), otherwise True iff some free machine sits on the
        task's preferred rack.  Redundancy policies use this to steer
        clones towards local slots.
        """
        engine = self._engine
        if not engine._topology_active:
            return None
        preferred = task.preferred_rack
        rack_of = engine._rack_of
        for machine_id in engine.cluster._free_ids:
            if rack_of[machine_id] == preferred:
                return True
        return False

    # -- jobs ---------------------------------------------------------------------

    @property
    def alive_jobs(self) -> List[Job]:
        """Jobs that have arrived and are not yet complete (``psi^s(l)``)."""
        return self._engine.alive_jobs()

    @property
    def num_alive_jobs(self) -> int:
        """Number of alive jobs (``len(alive_jobs)``)."""
        return len(self._engine.alive_jobs())

    # -- running copies (for progress-monitoring schedulers) ------------------------

    def running_copies(self) -> Iterator[TaskCopy]:
        """All copies currently occupying machines (including blocked ones)."""
        for job in self._engine.alive_jobs():
            for task in job.all_tasks():
                for copy in task.copies:
                    if copy.is_active:
                        yield copy

    def copy_elapsed(self, copy: TaskCopy) -> float:
        """Processing time ``copy`` has consumed so far."""
        return copy.elapsed(self.time)

    def copy_progress(self, copy: TaskCopy) -> float:
        """Progress fraction of ``copy`` in ``[0, 1]``.

        This models the progress score a MapReduce framework reports for
        every running attempt (fraction of input records processed); it is
        what detection-based schedulers such as Mantri and LATE consume.
        """
        return copy.progress(self.time)

    def observed_durations(self, job: Job, phase: Phase) -> List[float]:
        """Durations of copies of ``job``/``phase`` that ran to completion.

        This is the sample history a detection-based scheduler (Mantri, LATE)
        uses to estimate the expected duration of a relaunched copy.
        """
        durations: List[float] = []
        for task in job.tasks(phase):
            for copy in task.copies:
                if copy.is_finished and copy.start_time is not None:
                    durations.append(copy.finish_time - copy.start_time)
        return durations


class Scheduler(ABC):
    """Base class for every scheduling policy (the paper's and the baselines)."""

    #: Human-readable policy name used in result tables.
    name: str = "scheduler"
    #: If not ``None``, the engine wakes the scheduler every ``tick_interval``
    #: time units even when no arrival/completion occurs.  Progress-based
    #: speculation (Mantri, LATE) needs this; the paper's algorithms do not.
    tick_interval: Optional[float] = None

    def bind(self, view: SchedulerView) -> None:
        """Called once before the simulation starts."""
        self._view = view

    @property
    def view(self) -> SchedulerView:
        """The bound view (only valid after :meth:`bind`)."""
        if not hasattr(self, "_view"):
            raise RuntimeError(f"{type(self).__name__} has not been bound to a view")
        return self._view

    # -- notification hooks (optional) ------------------------------------------------

    def on_job_arrival(self, job: Job, time: float) -> None:
        """Called when ``job`` enters the cluster."""

    def on_task_completion(self, task: Task, time: float) -> None:
        """Called when a task (not an individual copy) completes."""

    def on_job_completion(self, job: Job, time: float) -> None:
        """Called when the last reduce task of ``job`` completes."""

    # -- the actual decision -----------------------------------------------------------

    @abstractmethod
    def schedule(self, view: SchedulerView) -> Sequence[LaunchRequest]:
        """Return the copies to launch at this decision point.

        The total number of copies requested must not exceed
        ``view.num_free_machines``; the engine truncates excess requests and
        counts them in ``SimulationResult.over_requests`` (a correct policy
        never over-requests, and the test-suite asserts this).
        """

    # -- shared helpers -------------------------------------------------------------------

    @staticmethod
    def eligible_tasks(job: Job) -> List[Task]:
        """Unscheduled tasks of ``job`` in paper order: map first, then reduce.

        Reduce tasks are listed even when the map phase is incomplete; the
        engine will park their copies (occupying machines without progress),
        exactly as the paper's Algorithm 1 allows.  Policies that prefer not
        to waste machines this way can filter on ``job.map_phase_complete``.
        """
        pending = job.unscheduled_tasks(Phase.MAP)
        if pending:
            return pending
        return job.unscheduled_tasks(Phase.REDUCE)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(name={self.name!r})"


class ComposedScheduler(Scheduler):
    """The policy-kernel driver: runs any ordering x allocation x redundancy.

    Every decision point proceeds in two steps: the allocation policy
    distributes the free machines over the ordering policy's job ranking
    (routing per-job grants through the redundancy policy's
    ``expand_grant`` hook when it is share-based), then the redundancy
    policy's ``finalize`` hook spends the still-free machines on clones or
    speculative duplicates.  The seven historical schedulers are fixed
    triples of this driver (see
    :data:`repro.policies.NAMED_COMPOSITIONS`); their legacy classes are
    thin subclasses pinning the triple and the historical constructor
    signature.

    Parameters
    ----------
    ordering, allocation, redundancy:
        Policy registry names (``"fifo"``/``"fair"``/``"srpt"``,
        ``"greedy"``/``"share"``, ``"none"``/``"clone"``/``"sca"``/
        ``"late"``/``"mantri"``) or constructed policy instances for
        non-default parameters.
    epsilon:
        Machine-sharing fraction consumed by the ``share`` allocation.
    locality_wait:
        Delay-scheduling wait (simulated seconds) consumed by the
        ``delay`` allocation; ``None`` keeps the policy default.
    r:
        Standard-deviation weight consumed by the ``srpt`` ordering.
    seed:
        Seed of the scheduler's private RNG (the random task subsets and
        clone spreading of the paper's cloning policy).
    allow_early_reduce:
        If True, reduce tasks may be placed before their job's map phase
        completes (they park without progress) -- the offline algorithm's
        behaviour, exposed for ablations.
    name:
        Result-table name; defaults to the composition label
        (``"srpt+share+clone"`` style).
    """

    def __init__(
        self,
        ordering: Union[str, "OrderingPolicy"] = "fifo",
        allocation: Union[str, "AllocationPolicy"] = "greedy",
        redundancy: Union[str, "RedundancyPolicy"] = "none",
        *,
        epsilon: float = 0.6,
        locality_wait: Optional[float] = None,
        r: float = 0.0,
        seed: int = 0,
        allow_early_reduce: bool = False,
        name: Optional[str] = None,
    ) -> None:
        # Deferred import: repro.policies imports this module for the
        # Scheduler/LaunchRequest contract, so importing it at module level
        # would be cyclic.
        from repro.policies import (
            GreedyAllocation,
            RedundancyPolicy,
            make_allocation,
            make_ordering,
            make_redundancy,
        )

        import numpy as np

        self.ordering = make_ordering(ordering, r=r)
        self.allocation = make_allocation(
            allocation, epsilon=epsilon, locality_wait=locality_wait
        )
        self.redundancy = make_redundancy(redundancy)
        self.allow_early_reduce = allow_early_reduce
        # The engine's wake-up request combines both tick sources: the
        # redundancy policy's fixed speculation cadence and the allocation
        # policy's (possibly dynamic) deferral deadline.  Dynamic-tick
        # allocations refresh their interval inside allocate(); schedule()
        # re-derives the combined value after every decision.
        self._redundancy_tick = self.redundancy.tick_interval
        self._allocation_ticks = getattr(self.allocation, "dynamic_tick", False)
        self.tick_interval = self._combined_tick()
        # Hot-path gates, resolved once (plain bools so the scheduler stays
        # picklable for pool dispatch): when the redundancy policy left the
        # base no-op hooks in place, the per-completion forwarding and the
        # per-decision finalize pass are skipped entirely.  The engine reads
        # ``ignores_task_completions`` to elide its own notification call.
        redundancy_cls = type(self.redundancy)
        self.ignores_task_completions = (
            redundancy_cls.on_task_completion
            is RedundancyPolicy.on_task_completion
        )
        self._redundancy_finalizes = (
            redundancy_cls.finalize is not RedundancyPolicy.finalize
        )
        # Static ordering + greedy allocation (the overwhelmingly common
        # composition) dispatches straight to the static machine walk,
        # skipping the allocate() indirection per decision point.
        self._static_greedy = (
            type(self.allocation) is GreedyAllocation
            and not self.ordering.dynamic
        )
        # The checkpoint redundancy policy carries the checkpoint interval;
        # the engine discovers it here and enables checkpoint-resume kills.
        self.checkpoint_interval = getattr(
            self.redundancy, "checkpoint_interval", None
        )
        self._rng = np.random.default_rng(seed)
        self.name = name if name is not None else (
            f"{self.ordering.name}+{self.allocation.name}+{self.redundancy.name}"
        )

    def _combined_tick(self) -> Optional[float]:
        """Min of the redundancy cadence and the allocation's deadline hint."""
        allocation_tick = getattr(self.allocation, "tick_interval", None)
        redundancy_tick = self._redundancy_tick
        if allocation_tick is None:
            return redundancy_tick
        if redundancy_tick is None or allocation_tick < redundancy_tick:
            return allocation_tick
        return redundancy_tick

    def on_task_completion(self, task: Task, time: float) -> None:
        """Forward completion observations to the redundancy policy."""
        self.redundancy.on_task_completion(task, time)

    def schedule(self, view: SchedulerView) -> List[LaunchRequest]:
        """Return the copies to launch at this decision point (see base class)."""
        free = view.num_free_machines
        if free <= 0:
            return []
        if self._static_greedy:
            planned = self.allocation._static_walk(
                view, self.ordering, free, self.allow_early_reduce
            )
            used = len(planned)
        else:
            planned, used = self.allocation.allocate(
                view,
                self.ordering,
                self.redundancy,
                self._rng,
                self.allow_early_reduce,
            )
            if self._allocation_ticks:
                # The engine reads tick_interval right after this call, so
                # refreshing the attribute is enough to move the wake-up.
                self.tick_interval = self._combined_tick()
        if not self._redundancy_finalizes:
            return planned
        return self.redundancy.finalize(
            view,
            free - used,
            planned,
            self._rng,
            self.allocation.shares_machines,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ComposedScheduler({self.ordering.name!r}, "
            f"{self.allocation.name!r}, {self.redundancy.name!r})"
        )
