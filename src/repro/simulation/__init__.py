"""Discrete-event MapReduce cluster simulator.

The engine replays a :class:`~repro.workload.trace.Trace` against a
scheduler implementing the :class:`~repro.simulation.scheduler_api.Scheduler`
interface on a cluster of ``M`` machines, honouring the paper's semantics:

* one task copy per machine at a time,
* reduce copies blocked until their job's map phase completes,
* a task completes when its earliest copy completes and surviving clones are
  killed immediately,
* scheduling decisions are taken at job arrivals, task completions and
  (for progress-monitoring schedulers such as Mantri) periodic ticks.
"""

from repro.simulation.engine import SimulationEngine, SimulationError
from repro.simulation.events import Event, EventType
from repro.simulation.experiment_runner import (
    ExperimentRunner,
    ReplicatedResult,
    RunSpec,
    SchedulerSpec,
    TraceSpec,
    default_workers,
    normalize_workers,
    run_replications,
    run_simulation,
    sweep_specs,
)
from repro.simulation.metrics import JobRecord, SimulationResult
from repro.simulation.results_store import (
    ResultsStore,
    UncacheableSpecError,
    run_spec_fingerprint,
)
from repro.simulation.scheduler_api import LaunchRequest, Scheduler, SchedulerView
from repro.simulation.sharding import (
    ShardedRun,
    ShardingUnsupported,
    plan_shards,
    run_sharded,
)

__all__ = [
    "SimulationEngine",
    "SimulationError",
    "Event",
    "EventType",
    "JobRecord",
    "SimulationResult",
    "LaunchRequest",
    "Scheduler",
    "SchedulerView",
    "ReplicatedResult",
    "run_simulation",
    "run_replications",
    "ExperimentRunner",
    "RunSpec",
    "SchedulerSpec",
    "TraceSpec",
    "default_workers",
    "normalize_workers",
    "sweep_specs",
    "ResultsStore",
    "UncacheableSpecError",
    "run_spec_fingerprint",
    "ShardedRun",
    "ShardingUnsupported",
    "plan_shards",
    "run_sharded",
]
