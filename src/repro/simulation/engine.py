"""The discrete-event simulation engine.

The engine owns all mutable state (jobs, tasks, copies, machines) and is the
only component allowed to sample task workloads.  It advances time from one
decision point to the next -- job arrivals, copy completions, machine
events and optional periodic ticks -- which is equivalent to the paper's
per-slot stepping because machine allocations only change at those points.

Semantics enforced here (Section III of the paper):

* each machine holds at most one copy at a time;
* a reduce copy placed before its job's map phase completes occupies its
  machine but makes no progress until the map phase finishes;
* a task completes when its earliest-finishing copy completes; surviving
  clones are killed at that instant and their machines freed;
* the scheduler is consulted after every batch of simultaneous events.

Scenario extensions (:mod:`repro.scenarios`):

* machines may carry individual static speeds (heterogeneous clusters);
* a machine's *effective* speed can change mid-run -- dynamic straggler
  slowdown onset/recovery -- in which case the engine settles the work its
  resident copy has completed so far and re-estimates the finish time at
  the new rate (stale finish events are dropped by version: the
  *versioned finish event* contract of :mod:`repro.simulation.events`);
* machines can fail, killing the resident copy (re-dispatched **exactly
  once** through the normal scheduling path because the task becomes
  unscheduled again) and rejoining the free pool after repair.

All scenario randomness flows from dedicated per-run / per-machine streams
(see the seeding contract in :mod:`repro.scenarios`), so enabling a
scenario never perturbs workload sampling, and every run stays a pure
function of its spec.

Streaming traces and the hot path
---------------------------------
The engine accepts either a fully materialised
:class:`~repro.workload.trace.Trace` or a lazy
:class:`~repro.workload.stream.TraceStream`.  In both cases arrivals are
consumed with **one event of lookahead**: exactly one not-yet-fired arrival
event sits in the heap at any time, and popping it immediately pulls the
next job spec from the source.  Because the source is arrival-ordered, this
produces byte-identical event batches to pushing every arrival up front
while keeping memory proportional to the *alive* job set -- a million-job
stream never materialises a million specs.  For a ``Trace`` the engine
additionally retains finished :class:`~repro.workload.job.Job` objects (in
``_jobs``, arrival order) for post-run inspection; for a stream it drops
them as they finish so memory stays bounded.

The hot path relies on the O(1) incremental counters of
:mod:`repro.workload.job` (unscheduled/active/incomplete task counts
updated at copy transitions, never recomputed by scanning) and on the
tuple-payload :class:`~repro.simulation.events.EventHeap` (C-speed
comparisons, Job/TaskCopy payloads carried directly in the heap tuples,
lazy-deletion decrease-key for finish re-estimates).  Task workloads are
pre-sampled per stage with one vectorised ``sample_batch`` draw at job
arrival -- bit-identical to per-task draws by the RNG-consumption
contract of :meth:`repro.workload.distributions.DurationDistribution
.sample_batch` -- into buffers living on the :class:`Job` itself.  All
events at one timestamp are drained as a single batch before the
scheduler is consulted, and the static FIFO+greedy composition takes a
gated engine-inlined decision walk (see :meth:`SimulationEngine
._resolve_fast_lane`).
"""

from __future__ import annotations

import itertools
from heapq import heappop, heappush
from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from repro.cluster.state import ClusterState
from repro.cluster.stragglers import NoStragglers, StragglerModel
from repro.scenarios import ScenarioSpec, machine_process_rng, placement_rng
from repro.simulation.events import Event, EventHeap, EventType
from repro.simulation.metrics import JobRecord, SimulationResult
from repro.simulation.scheduler_api import LaunchRequest, Scheduler, SchedulerView
from repro.workload.distributions import Deterministic
from repro.workload.job import _LEGACY_DEPENDENTS, Job, Task, TaskCopy
from repro.workload.stream import TraceStream
from repro.workload.trace import Trace

__all__ = ["SimulationEngine", "SimulationError"]

#: Plain-int arrival priority for the inlined arrival push (see
#: :meth:`SimulationEngine._push_next_arrival`).
_ARRIVAL_PRIORITY = int(EventType.JOB_ARRIVAL)

#: What the engine accepts as a workload: an in-memory trace or a lazy stream.
TraceLike = Union[Trace, TraceStream]


class SimulationError(RuntimeError):
    """Raised when the simulation reaches an inconsistent or stuck state."""


class _RunningCopy:
    """Dynamic-scenario progress ledger for the copy running on one machine.

    ``work_remaining`` is in raw work units; ``rate`` is the machine's
    effective speed at ``settled_at``.  Settling folds the work processed
    since the last settle into ``work_remaining`` so the finish time can be
    re-estimated whenever the rate changes.
    """

    __slots__ = ("copy", "work_remaining", "settled_at", "rate")

    def __init__(
        self, copy: TaskCopy, work_remaining: float, settled_at: float, rate: float
    ) -> None:
        self.copy = copy
        self.work_remaining = work_remaining
        self.settled_at = settled_at
        self.rate = rate


class SimulationEngine:
    """Replays one trace (or stream) against one scheduler on ``M`` machines."""

    def __init__(
        self,
        trace: TraceLike,
        scheduler: Scheduler,
        num_machines: int,
        *,
        seed: int = 0,
        machine_speed: float = 1.0,
        straggler_model: Optional[StragglerModel] = None,
        scenario: Optional[ScenarioSpec] = None,
        max_time: Optional[float] = None,
        check_invariants: bool = False,
    ) -> None:
        if num_machines <= 0:
            raise ValueError(f"num_machines must be positive, got {num_machines}")
        if machine_speed <= 0:
            raise ValueError(f"machine_speed must be positive, got {machine_speed}")
        self.trace = trace
        self.scheduler = scheduler
        self.scenario = scenario
        speeds = None
        if scenario is not None:
            sampled = scenario.machine_speeds(num_machines, seed)
            if sampled is not None:
                # ``machine_speed`` stays the resource-augmentation knob: it
                # scales every sampled per-machine speed uniformly.
                speeds = sampled * machine_speed
        self.cluster = ClusterState(
            num_machines, machine_speed=machine_speed, speeds=speeds
        )
        self.machine_speed = machine_speed
        self.straggler_model = (
            straggler_model if straggler_model is not None else NoStragglers()
        )
        # Fast path: skip the per-copy inflate() call entirely when no
        # straggler model is configured (the overwhelmingly common case).
        self._inflate = (
            None
            if isinstance(self.straggler_model, NoStragglers)
            else self.straggler_model.inflate
        )
        self.rng = np.random.default_rng(seed)
        self.seed = seed
        self.max_time = max_time
        self.check_invariants = check_invariants
        # Checkpointing redundancy: the composed scheduler exposes the
        # interval when its redundancy policy is "checkpoint"; the engine
        # then rounds a failure-killed copy's completed work down to an
        # interval multiple and resumes the task from there (see
        # _handle_machine_failure / _launch_copy).
        interval = getattr(scheduler, "checkpoint_interval", None)
        if interval is not None and interval <= 0:
            raise ValueError(
                f"checkpoint_interval must be positive, got {interval}"
            )
        self._checkpoint_interval: Optional[float] = interval

        self.now: float = 0.0
        self._sequence = itertools.count()
        self._copy_ids = itertools.count()
        self._events = EventHeap()
        # Arrival stream state: jobs are pulled lazily, one lookahead at a
        # time (see the module docstring).  ``_jobs`` retains materialised
        # jobs for post-run inspection only when the source is an in-memory
        # Trace; streams stay memory-bounded by dropping finished jobs.
        self._spec_iter = iter(trace)
        self._total_jobs = trace.num_jobs
        self._retain_jobs = isinstance(trace, Trace)
        self._jobs: List[Job] = []
        self._specs_drawn = 0
        self._last_arrival_time = 0.0
        self._alive: Dict[int, Job] = {}
        self._completed = 0
        self._arrived = 0
        # Number of currently parked copies (launched on a not-yet-ready
        # stage, occupying a machine without progress).  Zero for every
        # run without allow_early_reduce, which lets the completion path
        # skip the parked-copy scan entirely (see _handle_copy_finish).
        self._parked = 0
        self._next_tick: Optional[float] = None
        # Dynamic-scenario state: per-machine process streams and the
        # progress ledger of running copies.  ``_dynamic`` gates every piece
        # of this bookkeeping so static scenarios keep the fast path.
        self._dynamic = scenario is not None and scenario.is_dynamic
        self._running: Dict[int, _RunningCopy] = {}
        self._machine_rngs: List[np.random.Generator] = []
        if self._dynamic:
            self._machine_rngs = [
                machine_process_rng(seed, m) for m in range(num_machines)
            ]
        # Rack topology & locality.  Only a *non-degenerate* topology
        # activates any of it: the degenerate (single-rack or unit-penalty)
        # case takes the exact legacy code path, so its results are
        # bit-identical to topology=None and the locality counters stay
        # zero (pinned by tests/test_topology.py).
        topology = scenario.topology if scenario is not None else None
        self._topology_active = topology is not None and not topology.is_degenerate
        self._rack_of: Optional[List[int]] = None
        self._placement_rng: Optional[np.random.Generator] = None
        self._remote_slowdown = 1.0
        self._num_racks = 1
        if self._topology_active:
            self._num_racks = topology.racks
            self._rack_of = [m % topology.racks for m in range(num_machines)]
            self._remote_slowdown = topology.remote_slowdown
            self._placement_rng = placement_rng(seed)
            self.cluster.configure_topology(self._rack_of)
        declared_tasks = trace.total_tasks
        self._accumulate_tasks = declared_tasks is None
        self.result = SimulationResult(
            scheduler_name=scheduler.name,
            num_machines=num_machines,
            total_tasks=0 if declared_tasks is None else declared_tasks,
            seed=seed,
        )
        self.straggler_model.prepare(num_machines, self.rng)
        self._view = SchedulerView(self)
        # Resolved notification hooks, or None when the scheduler (or the
        # policy an instance attribute delegates to) left the base no-op in
        # place: the engine then skips the call entirely on its hot paths.
        # ``__func__`` sees through both class overrides and instance-level
        # rebinding (ComposedScheduler rebinds on_task_completion when its
        # redundancy policy ignores completions).
        self._notify_arrival = self._resolve_hook("on_job_arrival")
        self._notify_task_completion = self._resolve_hook("on_task_completion")
        self._notify_job_completion = self._resolve_hook("on_job_completion")
        self._fast_fifo = self._resolve_fast_lane()

    def _resolve_fast_lane(self) -> bool:
        """True when the FIFO+greedy+none decision walk can be engine-inlined.

        The gate admits exactly the compositions whose ``schedule()`` call
        reduces to :meth:`GreedyAllocation._static_walk` over the identity
        :class:`~repro.policies.ordering.FIFOOrdering` with no redundancy
        finalize pass -- for those, the engine loop runs an equivalent walk
        that launches copies as it finds them, skipping the LaunchRequest
        plan/apply round-trip (see the fast-lane block in :meth:`_run`).
        Every condition is pinned to the exact class so any subclass
        override -- a custom ``schedule``, a re-sorting ordering, a
        finalizing redundancy -- falls back to the generic path.
        """
        # Deferred imports: repro.policies imports this package's
        # scheduler_api module, so a module-level import here could cycle
        # depending on which package is imported first.
        from repro.policies.ordering import FIFOOrdering
        from repro.simulation.scheduler_api import ComposedScheduler

        scheduler = self.scheduler
        return (
            isinstance(scheduler, ComposedScheduler)
            and type(scheduler).schedule is ComposedScheduler.schedule
            and scheduler._static_greedy
            and not scheduler._redundancy_finalizes
            and not scheduler.allow_early_reduce
            and type(scheduler.ordering) is FIFOOrdering
        )

    def _resolve_hook(self, name: str):
        """The scheduler's ``name`` hook, or ``None`` if it is the base no-op.

        A scheduler whose class overrides ``on_task_completion`` only to
        forward to a policy that ignores completions declares that with
        ``ignores_task_completions`` (see :class:`ComposedScheduler`).
        """
        if name == "on_task_completion" and getattr(
            self.scheduler, "ignores_task_completions", False
        ):
            return None
        hook = getattr(self.scheduler, name)
        base = getattr(Scheduler, name)
        if getattr(hook, "__func__", hook) is base:
            return None
        return hook

    # ------------------------------------------------------------------ public API

    def alive_jobs(self) -> List[Job]:
        """Arrived, not-yet-finished jobs in arrival order."""
        return list(self._alive.values())

    def run(self) -> SimulationResult:
        """Run the simulation to completion and return the collected metrics."""
        # The event loop allocates a handful of small objects per simulation
        # step; at the default gen-0 threshold (700) a long run spends >15%
        # of its wall clock in tens of thousands of young-generation
        # collections that scan the ever-growing record list.  Raising the
        # thresholds for the duration of the run cuts the collection count
        # dramatically while still reclaiming cyclic garbage periodically
        # (disabling GC outright would balloon RSS).  Stream-mode finalize
        # breaks the Job<->Task<->TaskCopy cycles explicitly, so nearly all
        # hot-loop garbage is reclaimed by reference counting alone -- the
        # raised gen-1/gen-2 multipliers then keep full collections (which
        # scan the ever-growing, acyclic record list) out of the loop.  GC
        # timing has no effect on simulation semantics, so results stay
        # bit-identical.
        import gc

        old_thresholds = gc.get_threshold()
        gc.set_threshold(10_000, 100, 100)
        try:
            return self._run()
        finally:
            gc.set_threshold(*old_thresholds)

    def _run(self) -> SimulationResult:
        """The actual event loop behind :meth:`run`."""
        self.scheduler.bind(self._view)
        self._push_next_arrival()
        self._schedule_initial_machine_events()
        # Hoisted loop-invariant conditions: ``tick_interval`` is fixed at
        # scheduler construction, so tickless runs (every policy but
        # LATE/Mantri) skip the per-iteration tick bookkeeping entirely.
        interval = self.scheduler.tick_interval
        ticks = interval is not None and interval > 0
        max_time = self.max_time
        check = self.check_invariants
        events = self._events
        entries = events._entries
        pop = heappop
        push = heappush
        handle = self._handle_event
        handle_finish = self._handle_copy_finish
        handle_arrival = self._handle_arrival
        pump = self._push_next_arrival
        launch = self._launch_copy
        refill = self._refill_workloads
        schedule = self.scheduler.schedule
        view = self._view
        cluster = self.cluster
        free_ids = cluster._free_ids
        machines = cluster._machines
        copy_ids = self._copy_ids
        sequence = self._sequence
        result = self.result
        alive_values = self._alive.values()
        dynamic = self._dynamic
        fast = self._fast_fifo
        # The *plain* launch gate: with no topology, no workload inflation,
        # no checkpointing and no dynamic scenario, _launch_copy collapses
        # to pure counter updates plus one heap push -- inlined below in
        # the fast-lane walk (launched tasks there are always on a ready
        # stage, so the parked branch is unreachable too).
        plain = (
            fast
            and not self._topology_active
            and not dynamic
            and self._inflate is None
            and self._checkpoint_interval is None
        )
        total_jobs = self._total_jobs
        arrival_priority = int(EventType.JOB_ARRIVAL)
        finish_priority = int(EventType.COPY_FINISH)

        # The same-timestamp batch drain of :meth:`EventHeap.pop_time_batch`,
        # fused with event handling: each entry is handled as it is popped
        # instead of being buffered into a batch list first.  This is
        # behaviourally identical -- handlers never push same-timestamp
        # events (all workloads and scenario draws are strictly positive),
        # stale finishes are rejected both in the heap and in the handler,
        # and within every (time, priority) class the relative sequence
        # order of pushes is preserved -- but it drops one list allocation
        # and two method calls per simulation step.  Entries are raw
        # ``(time, priority, sequence, payload, version)`` tuples: the two
        # dominant kinds carry their payload directly (one TaskCopy per
        # finish, one Job per arrival) and dispatch straight to their
        # handlers with no Event object in sight; everything else (machine
        # events, ticks) carries an :class:`Event` payload handled by
        # :meth:`_handle_event`.
        while True:
            # Inlined EventHeap.pop_entry: pop the earliest live entry,
            # dropping stale finish entries (killed or re-estimated copies)
            # at the head.
            entry = None
            while entries:
                head = entries[0]
                if head[1] == finish_priority:
                    copy = head[3]
                    if (
                        copy.finish_time is not None
                        or copy.killed_at is not None
                        or head[4] != copy.finish_version
                    ):
                        pop(entries)
                        continue
                entry = pop(entries)
                break
            if entry is None:
                break
            now = self.now = entry[0]
            if max_time is not None and now > max_time:
                raise SimulationError(
                    f"simulation exceeded max_time={max_time} at t={now}"
                )
            while True:
                priority = entry[1]
                if priority == finish_priority:
                    handle_finish(entry[3], entry[4])
                elif priority == arrival_priority:
                    pump()
                    handle_arrival(entry[3])
                else:
                    handle(entry[3])
                # Inlined EventHeap.pop_entry_at: drain the rest of this
                # timestamp's batch (stale finish heads dropped in place;
                # stale entries later than ``now`` are left for the outer
                # pop to reach).
                entry = None
                while entries:
                    head = entries[0]
                    if head[0] != now:
                        break
                    if head[1] == finish_priority:
                        copy = head[3]
                        if (
                            copy.finish_time is not None
                            or copy.killed_at is not None
                            or head[4] != copy.finish_version
                        ):
                            pop(entries)
                            continue
                    entry = pop(entries)
                    break
                if entry is None:
                    break
            if self._completed == total_jobs:
                break
            # One decision point per batch.  The gated FIFO fast lane (see
            # _resolve_fast_lane) is the inlined equivalent of
            # ComposedScheduler.schedule -> GreedyAllocation._static_walk
            # -> launchable_tasks -> _apply_launches for the static
            # fifo+greedy+none composition: FIFOOrdering returns the alive
            # sequence unchanged, so the walk visits jobs in arrival order
            # (the live dict view -- launches never mutate the alive set)
            # and launches each launchable task immediately.  Immediate
            # launching is equivalent to plan-then-apply because a launch
            # only decrements the launched task's own job/stage counters
            # (each stage's count/readiness is snapshotted before its
            # tasks launch, per-task predicates of other tasks are
            # untouched, and readiness only changes at completions), and
            # the walk is bounded by the free count taken before any
            # launch, so requests can never exceed the machines that were
            # free at plan time.
            if fast:
                free = len(free_ids)
                if free > 0:
                    for job in alive_values:
                        if job._unscheduled_ready == 0:
                            continue
                        unscheduled = job._unscheduled
                        ready = job._stage_ready
                        stage = 0
                        for stage_list in job.stage_tasks:
                            count = unscheduled[stage]
                            if count and ready[stage]:
                                # Whole stage unscheduled (a fresh arrival)
                                # skips the per-task filter.
                                whole = count == len(stage_list)
                                for task in stage_list:
                                    if not whole and (
                                        task.completion_time is not None
                                        or task._num_active != 0
                                    ):
                                        continue
                                    if plain:
                                        # _launch_copy, inlined for the
                                        # plain gate above: the walk
                                        # already holds the job and a
                                        # ready stage, the machine is on
                                        # the free list (up, idle), and a
                                        # ready-stage copy starts at once.
                                        machine_id = free_ids[-1]
                                        buffer = job._workloads[stage]
                                        if not buffer:
                                            buffer = refill(task)
                                        raw_workload = buffer.pop()
                                        machine = machines[machine_id]
                                        if machine.slowdown == 1.0:
                                            duration = (
                                                raw_workload / machine.speed
                                            )
                                        else:
                                            duration = raw_workload / (
                                                machine.speed
                                                / machine.slowdown
                                            )
                                        copy = TaskCopy.__new__(TaskCopy)
                                        copy.copy_id = next(copy_ids)
                                        copy.task = task
                                        copy.machine_id = machine_id
                                        copy.launch_time = now
                                        copy.workload = duration
                                        copy.finish_time = None
                                        copy.killed_at = None
                                        copy.work = raw_workload
                                        copy.remote_penalty = 1.0
                                        num_active = task._num_active
                                        if num_active:
                                            result.redundant_copies_launched += 1
                                        else:
                                            unscheduled[stage] -= 1
                                            job._unscheduled_total -= 1
                                            job._unscheduled_ready -= 1
                                        task.copies.append(copy)
                                        task._num_active = num_active + 1
                                        job._active_copies += 1
                                        job._copies_launched += 1
                                        free_ids.pop()
                                        machine.current_copy = copy
                                        machine.copies_hosted += 1
                                        if stage == 0:
                                            cluster._map_running += 1
                                        else:
                                            cluster._reduce_running += 1
                                        result.total_copies += 1
                                        copy.start_time = now
                                        copy.finish_version = 1
                                        push(
                                            entries,
                                            (
                                                now + duration,
                                                0,
                                                next(sequence),
                                                copy,
                                                1,
                                            ),
                                        )
                                    else:
                                        launch(task)
                                    free -= 1
                                    if free == 0:
                                        break
                                if free == 0:
                                    break
                            stage += 1
                        if free == 0:
                            break
            else:
                requests = schedule(view)
                if requests:
                    self._apply_launches(requests)
            if ticks:
                # Ticks go into the heap before stuck-detection runs: an
                # allocation policy deferring its launches (delay
                # scheduling) keeps the run alive through its wake-up
                # tick, which the check must see.
                self._maybe_schedule_tick()
            if dynamic or not entries:
                # Stuck-detection only matters when no future event could
                # unstick the run: on the static path a non-empty heap
                # proves progress (the check's own fast exit, hoisted).
                self._check_progress_possible()
            if check:
                self.cluster.check_invariants()

        if self._completed != self._total_jobs:
            if self._specs_drawn < self._total_jobs and not self._alive:
                raise SimulationError(
                    f"trace source {getattr(self.trace, 'name', '?')!r} yielded "
                    f"{self._specs_drawn} of its declared {self._total_jobs} jobs"
                )
            unfinished = [job.job_id for job in self._alive.values()]
            raise SimulationError(
                f"simulation ended with {len(unfinished)} unfinished jobs "
                f"(e.g. {unfinished[:5]}); the scheduler left work unscheduled"
            )
        self.result.makespan = self.now
        return self.result

    # ------------------------------------------------------------------ event plumbing

    def _push(self, event: Event) -> None:
        self._events.push(event)

    def _push_finish(self, copy: TaskCopy, time: float) -> None:
        """Queue the (only currently valid) finish event of ``copy``."""
        self._events.push_finish(copy, time, next(self._sequence))

    def _push_next_arrival(self) -> None:
        """Pull the next job spec from the source and queue its arrival.

        Maintains the one-lookahead invariant: at most one unfired arrival
        event exists, and it is queued before the current event batch is
        sealed, so simultaneous arrivals land in the same batch exactly as
        they would with all arrivals pushed up front.
        """
        spec = next(self._spec_iter, None)
        if spec is None:
            return
        arrival_time = spec.arrival_time
        if arrival_time < self._last_arrival_time:
            raise SimulationError(
                f"trace source yielded arrivals out of order: job {spec.job_id} "
                f"at t={arrival_time} after t={self._last_arrival_time}"
            )
        self._last_arrival_time = arrival_time
        self._specs_drawn += 1
        job = Job.from_spec(spec)
        if self._retain_jobs:
            self._jobs.append(job)
        # Inlined EventHeap.push_arrival (one call per job of the stream).
        heappush(
            self._events._entries,
            (arrival_time, _ARRIVAL_PRIORITY, next(self._sequence), job, 0),
        )

    def _handle_event(self, event: Event) -> None:
        # Dispatch by frequency: completions dominate (one per copy),
        # arrivals come second (one per job); everything else is rare.
        if event.event_type is EventType.COPY_FINISH:
            self._handle_copy_finish(event.copy, event.version)
        elif event.event_type is EventType.JOB_ARRIVAL:
            self._handle_arrival(event.job)
        elif event.event_type is EventType.MACHINE_FAILURE:
            self._handle_machine_failure(event.machine_id)
        elif event.event_type is EventType.MACHINE_REPAIR:
            self._handle_machine_repair(event.machine_id)
        elif event.event_type is EventType.MACHINE_SLOWDOWN_START:
            self._handle_slowdown_start(event.machine_id)
        elif event.event_type is EventType.MACHINE_SLOWDOWN_END:
            self._handle_slowdown_end(event.machine_id)
        elif event.event_type is EventType.TICK:
            self._next_tick = None
        else:  # pragma: no cover - defensive
            raise SimulationError(f"unknown event type {event.event_type}")

    def _handle_arrival(self, job: Job) -> None:
        spec = job.spec
        job_id = spec.job_id
        alive = self._alive
        if job_id in alive:
            # Trace.__init__ rejects duplicate ids up front; a stream factory
            # can only be checked as it yields.  A duplicate would corrupt
            # the job_id-keyed alive/buffer bookkeeping -- fail fast instead.
            raise SimulationError(
                f"trace source yielded duplicate job_id {job_id} while "
                "the first job with that id is still alive"
            )
        alive[job_id] = job
        self._arrived += 1
        if self._accumulate_tasks:
            self.result.total_tasks += spec.num_map_tasks + spec.num_reduce_tasks
        # Pre-sample task workloads, one vectorised sample_batch draw per
        # stage in stage index order (map then reduce for the 2-node DAG),
        # so RNG consumption is bit-identical to per-task draws by the
        # sample_batch contract (see DurationDistribution.sample_batch).
        # The buffers live on the job itself -- they die with it at
        # finalize, with no dict or tuple-key allocation per stage.
        rng = self.rng
        workloads: List[List[float]] = []
        append = workloads.append
        for stage in job._stages:
            count = stage.num_tasks
            if count:
                dist = stage.duration
                if type(dist) is Deterministic:
                    # Constant workloads: no RNG use, no reverse needed.
                    append([dist._value] * count)
                else:
                    buffer = dist.sample_list(rng, count)
                    # Reversed so pop() consumes values in draw order.
                    buffer.reverse()
                    append(buffer)
            else:
                append([])
        job._workloads = workloads
        if self._topology_active:
            # One preferred-rack draw per job, in arrival order, from the
            # dedicated placement stream (see the seeding contract in
            # repro.scenarios): the rack holding the job's input splits.
            rack = int(self._placement_rng.integers(self._num_racks))
            for tasks in job.stage_tasks:
                for task in tasks:
                    task.preferred_rack = rack
        if self._notify_arrival is not None:
            self._notify_arrival(job, self.now)

    def _refill_workloads(self, task: Task) -> List[float]:
        """Refill ``task``'s stage buffer (clones/relaunches exhausted it).

        Refills with another stage-sized ``sample_batch`` draw to keep RNG
        calls rare; the cold path behind the inlined buffer pop in
        :meth:`_launch_copy`.
        """
        job = task.job
        count = max(job.stage_specs[task.stage].num_tasks, 1)
        buffer = task.duration_distribution.sample_list(self.rng, count)
        buffer.reverse()
        job._workloads[task.stage] = buffer
        return buffer

    def _handle_copy_finish(self, copy: TaskCopy, version: int = 0) -> None:
        if copy.finish_time is not None or copy.killed_at is not None:
            # Killed by an earlier event in this same batch.
            return
        if version != copy.finish_version:
            # Re-estimated by an earlier event in this same batch.
            return
        task = copy.task
        now = self.now
        result = self.result
        cluster = self.cluster
        dynamic = self._dynamic
        topology = self._topology_active
        # A finishing copy always started; elapsed = now - start (inlined
        # from TaskCopy.elapsed, which this hot path calls per completion).
        elapsed = now - copy.start_time
        # Inlined TaskCopy.finish + Task.complete (+ the bookkeeping hooks
        # they call) -- validation elided: the staleness tests above prove
        # the copy is active and its task incomplete.  The winning copy's
        # deactivation (+1 to the unscheduled counters, fires iff it was
        # the last active copy) and the task's completion (-1, same
        # condition) cancel exactly, so no unscheduled delta is applied on
        # this path at all.
        copy.finish_time = now
        task.completion_time = now
        job = task.job
        stage = task.stage
        num_active = task._num_active - 1
        task._num_active = num_active
        job._active_copies -= 1
        # Inlined ClusterState.release (a finishing copy is always placed
        # on its own machine); Task.phase avoided -- stage 0 is the map
        # phase.
        machine_id = copy.machine_id
        machine = cluster._machines[machine_id]
        machine.current_copy = None
        machine.busy_time += elapsed
        cluster._free_ids.append(machine_id)
        if stage == 0:
            cluster._map_running -= 1
        else:
            cluster._reduce_running -= 1
        if topology:
            cluster._rack_running[self._rack_of[machine_id]] -= 1
        if dynamic:
            self._running.pop(copy.machine_id, None)
        result.useful_work += elapsed

        if num_active:
            # Clones still occupy machines: kill and release them in copy
            # order (inlined TaskCopy.kill; the task's completion_time is
            # already set, so no unscheduled re-entry fires).
            for clone in task.copies:
                if clone.finish_time is None and clone.killed_at is None:
                    clone.killed_at = now
                    task._num_active -= 1
                    job._active_copies -= 1
                    clone_elapsed = (
                        0.0
                        if clone.start_time is None
                        else now - clone.start_time
                    )
                    machine_id = clone.machine_id
                    machine = cluster._machines[machine_id]
                    machine.current_copy = None
                    machine.busy_time += clone_elapsed
                    cluster._free_ids.append(machine_id)
                    if stage == 0:
                        cluster._map_running -= 1
                    else:
                        cluster._reduce_running -= 1
                    if topology:
                        cluster._rack_running[self._rack_of[machine_id]] -= 1
                    if dynamic:
                        self._running.pop(clone.machine_id, None)
                    result.wasted_work += clone_elapsed

        # Inlined Job.notify_task_completion (the engine calls it exactly
        # once per completion, so its ownership checks are elided).
        incomplete = job._incomplete
        incomplete[stage] -= 1
        job._incomplete_total -= 1
        if (
            incomplete[stage] == 0
            and job._stage_completion[stage] is None
            and job._stage_ready[stage]
        ):
            if job._dependents is _LEGACY_DEPENDENTS:
                # Inlined Job._complete_stage for the canonical 2-node
                # map->reduce DAG (the overwhelmingly common shape): the
                # cascade is fully known -- completing the map stage
                # readies the reduce stage (an *empty* reduce stage then
                # completes on the spot, finishing the job), completing
                # the reduce stage finishes the job.  The newly-ready
                # buffer is skipped: its only consumer is the parked-copy
                # unpark below, gated on the exact live parked count.
                completion = job._stage_completion
                completion[stage] = now
                if stage == 0:
                    job._stage_ready[1] = True
                    job._unscheduled_ready += job._unscheduled[1]
                    if job._incomplete[1] == 0:
                        completion[1] = now
                        job._incomplete_stages -= 2
                        job.completion_time = now
                    else:
                        job._incomplete_stages -= 1
                        if self._parked:
                            self._unblock_parked_copies(job, (1,))
                else:
                    job._incomplete_stages -= 1
                    if job._incomplete_stages == 0:
                        job.completion_time = now
            else:
                job._complete_stage(stage, now)
                newly_ready = job._newly_ready
                if newly_ready:
                    job._newly_ready = []
                    if self._parked:
                        self._unblock_parked_copies(job, newly_ready)
        if self._notify_task_completion is not None:
            self._notify_task_completion(task, now)
        if job.completion_time is not None:
            self._finalize_job(job)

    def _unblock_parked_copies(self, job: Job, stages: Sequence[int]) -> None:
        """Start copies parked behind the now-complete predecessors of ``stages``."""
        for stage in stages:
            for task in job.stage_tasks[stage]:
                for copy in task.copies:
                    if copy.is_active and copy.is_blocked:
                        copy.start(self.now)
                        self._parked -= 1
                        if self._dynamic:
                            # The machine's effective speed may have changed
                            # since launch; price the parked work at the
                            # current rate (remote-read penalty included).
                            machine = self.cluster.machine(copy.machine_id)
                            rate = machine.effective_speed
                            if copy.remote_penalty != 1.0:
                                rate /= copy.remote_penalty
                            copy.workload = copy.work / rate
                            self._running[copy.machine_id] = _RunningCopy(
                                copy=copy,
                                work_remaining=copy.work,
                                settled_at=self.now,
                                rate=rate,
                            )
                        self._push_finish(copy, self.now + copy.workload)

    def _finalize_job(self, job: Job) -> None:
        spec = job.spec
        job_id = spec.job_id
        del self._alive[job_id]
        self._completed += 1
        num_stages = len(job._stages)
        # Drop the pre-sampled workload buffers with the job (for retained
        # traces the Job object itself outlives the run).
        job._workloads = None
        # Inlined JobRecord construction and SimulationResult.add_record
        # (append plus metric-cache invalidation); runs once per completed
        # job, and the record constructor is pure field assignment.
        record = JobRecord.__new__(JobRecord)
        record.job_id = job_id
        record.arrival_time = spec.arrival_time
        record.completion_time = job.completion_time
        record.weight = spec.weight
        record.num_map_tasks = spec.num_map_tasks
        record.num_reduce_tasks = spec.num_reduce_tasks
        record.copies_launched = job._copies_launched
        record.map_phase_completion_time = job._stage_completion[0]
        record.num_stages = num_stages
        result = self.result
        result.records.append(record)
        result_dict = result.__dict__
        result_dict.pop("_flowtimes_cache", None)
        result_dict.pop("_weights_cache", None)
        if self._notify_job_completion is not None:
            self._notify_job_completion(job, self.now)
        if not self._retain_jobs:
            # Stream mode drops finished jobs entirely -- break the
            # Job<->Task<->TaskCopy reference cycles so the whole graph is
            # reclaimed by reference counting the moment the last external
            # reference (a stale heap entry at most) drops, instead of
            # lingering as cyclic garbage for the collector.  This is what
            # lets run() raise the gen-0 GC threshold so far: the hot loop
            # produces almost no garbage that *needs* the cycle collector.
            for tasks in job.stage_tasks:
                for task in tasks:
                    task.copies.clear()
            job.stage_tasks = ()

    # ------------------------------------------------------------------ machine events

    def _schedule_initial_machine_events(self) -> None:
        """Seed the per-machine failure/slowdown timelines (dynamic scenarios).

        Draw order is fixed -- per machine, failure before slowdown -- and
        each machine draws from its own dedicated stream, so timelines are
        reproducible regardless of how events later interleave.
        """
        if self.scenario is None:
            return
        failures = self.scenario.failures
        stragglers = self.scenario.stragglers
        for machine_id in range(self.cluster.num_machines):
            rng = self._machine_rngs[machine_id] if self._dynamic else None
            if failures is not None:
                self._push(
                    Event.machine_failure(
                        failures.draw_uptime(rng),
                        next(self._sequence),
                        machine_id,
                    )
                )
            if stragglers is not None:
                self._push(
                    Event.slowdown_start(
                        stragglers.draw_onset(rng),
                        next(self._sequence),
                        machine_id,
                    )
                )

    def _handle_machine_failure(self, machine_id: int) -> None:
        """Kill the resident copy (if any) and take the machine down.

        The killed copy's task reverts to *unscheduled*, so the scheduler --
        consulted right after this event batch -- re-dispatches it through
        the normal launch path: exactly one replacement copy per kill for
        single-copy policies (asserted in the engine invariant tests).
        """
        machine = self.cluster.machine(machine_id)
        if machine.is_down:  # pragma: no cover - defensive (no double failures)
            return
        copy = machine.current_copy
        if copy is not None and copy.is_active:
            if copy.start_time is None:
                # Failure killed a parked (never-started) copy.
                self._parked -= 1
            elapsed = copy.elapsed(self.now)
            copy.kill(self.now)
            self.cluster.release(copy, elapsed=elapsed)
            entry = self._running.pop(machine_id, None)
            if self._checkpoint_interval is not None and elapsed > 0.0:
                self._checkpoint_killed_copy(copy, entry, elapsed)
            else:
                self.result.wasted_work += elapsed
            self.result.copies_killed_by_failure += 1
        self.cluster.mark_down(machine_id)
        self.result.machine_failures += 1
        failures = self.scenario.failures if self.scenario is not None else None
        if failures is not None:
            repair_after = failures.draw_repair(self._machine_rngs[machine_id])
            self._push(
                Event.machine_repair(
                    self.now + repair_after, next(self._sequence), machine_id
                )
            )
        # A failure event injected without a failure process (tests) leaves
        # the machine down for the rest of the run.

    def _checkpoint_killed_copy(
        self, copy: TaskCopy, entry: Optional[_RunningCopy], elapsed: float
    ) -> None:
        """Round a failure-killed copy's completed work down to a checkpoint.

        The raw work the copy processed before the failure, together with
        whatever the task had checkpointed from earlier kills, is rounded
        *down* to a multiple of the checkpoint interval -- that much is
        durably saved (the next copy of the task resumes from it, see
        :meth:`_launch_copy`).  The copy's wall-clock time splits
        proportionally: the saved fraction counts as useful work, the
        work since the last checkpoint is wasted.
        """
        task = copy.task
        interval = self._checkpoint_interval
        if entry is not None:
            # Dynamic ledger: raw work done = total minus what remains at
            # the rates actually experienced since the last settle.
            remaining = max(
                0.0,
                entry.work_remaining - entry.rate * (self.now - entry.settled_at),
            )
            raw_done = copy.work - remaining
        else:
            raw_done = copy.work * (elapsed / copy.workload)
        if raw_done <= 0.0:
            self.result.wasted_work += elapsed
            return
        accumulated = task.checkpoint_work + raw_done
        saved = int(accumulated / interval) * interval
        newly_saved = saved - task.checkpoint_work
        if newly_saved <= 0.0:
            self.result.wasted_work += elapsed
            return
        task.checkpoint_work = saved
        wall_saved = min(elapsed, elapsed * (newly_saved / raw_done))
        self.result.useful_work += wall_saved
        self.result.wasted_work += elapsed - wall_saved
        self.result.work_saved_by_checkpointing += newly_saved

    def _handle_machine_repair(self, machine_id: int) -> None:
        """Return a repaired machine to the free pool and draw its next uptime."""
        self.cluster.mark_up(machine_id)
        failures = self.scenario.failures if self.scenario is not None else None
        if failures is not None:
            uptime = failures.draw_uptime(self._machine_rngs[machine_id])
            self._push(
                Event.machine_failure(
                    self.now + uptime, next(self._sequence), machine_id
                )
            )

    def _handle_slowdown_start(self, machine_id: int) -> None:
        """Begin a slow period: drop the machine's effective speed mid-flight."""
        stragglers = self.scenario.stragglers
        machine = self.cluster.machine(machine_id)
        self._settle_machine(machine_id)
        machine.slowdown = stragglers.factor
        self._reschedule_running_copy(machine_id)
        self.result.straggler_onsets += 1
        self._push(
            Event.slowdown_end(
                self.now + stragglers.draw_duration(self._machine_rngs[machine_id]),
                next(self._sequence),
                machine_id,
            )
        )

    def _handle_slowdown_end(self, machine_id: int) -> None:
        """End a slow period: restore the machine's base speed."""
        stragglers = self.scenario.stragglers
        machine = self.cluster.machine(machine_id)
        self._settle_machine(machine_id)
        machine.slowdown = 1.0
        self._reschedule_running_copy(machine_id)
        if stragglers is not None:
            self._push(
                Event.slowdown_start(
                    self.now + stragglers.draw_onset(self._machine_rngs[machine_id]),
                    next(self._sequence),
                    machine_id,
                )
            )

    def _settle_machine(self, machine_id: int) -> None:
        """Fold work processed since the last settle into the ledger."""
        entry = self._running.get(machine_id)
        if entry is None:
            return
        entry.work_remaining = max(
            0.0, entry.work_remaining - entry.rate * (self.now - entry.settled_at)
        )
        entry.settled_at = self.now

    def _reschedule_running_copy(self, machine_id: int) -> None:
        """Re-estimate the resident copy's finish time at the machine's new rate.

        Must be called right after :meth:`_settle_machine` (which priced the
        work done so far at the *old* rate).  The superseded finish event is
        invalidated by the version bump in :meth:`_push_finish` -- the
        decrease-key operation of :class:`~repro.simulation.events.EventHeap`.
        """
        entry = self._running.get(machine_id)
        if entry is None:
            return
        machine = self.cluster.machine(machine_id)
        copy = entry.copy
        rate = machine.effective_speed
        if copy.remote_penalty != 1.0:
            rate /= copy.remote_penalty
        entry.rate = rate
        remaining_wall = entry.work_remaining / rate
        # Keep the wall-clock workload estimate coherent so progress scores
        # (LATE/Mantri) and remaining-work queries stay meaningful.
        copy.workload = copy.elapsed(self.now) + remaining_wall
        self._push_finish(copy, self.now + remaining_wall)

    # ------------------------------------------------------------------ scheduling

    def _apply_launches(self, requests: Sequence[LaunchRequest]) -> None:
        now = self.now + 1e-9
        free_ids = self.cluster._free_ids
        result = self.result
        launch = self._launch_copy
        for request in requests:
            task = request.task
            job = task.job
            # Combined guard over the three _validate_request conditions;
            # the (cold) method re-runs them to raise the precise error.
            if (
                job.spec.arrival_time > now
                or task.completion_time is not None
                or job.completion_time is not None
            ):
                self._validate_request(task)
            num_copies = request.num_copies
            if num_copies == 1:
                # The overwhelmingly common request shape.
                if free_ids:
                    launch(task)
                else:
                    result.over_requests += 1
                continue
            for _ in range(num_copies):
                if not free_ids:
                    result.over_requests += 1
                    continue
                launch(task)

    def _validate_request(self, task: Task) -> None:
        job = task.job
        if job.spec.arrival_time > self.now + 1e-9:
            raise SimulationError(
                f"scheduler launched task {task.task_id} before its job arrived"
            )
        if task.completion_time is not None:
            raise SimulationError(
                f"scheduler launched already-completed task {task.task_id}"
            )
        if job.completion_time is not None:
            raise SimulationError(
                f"scheduler launched a task of completed job {job.job_id}"
            )

    def _place_for_locality(self, task: Task) -> None:
        """Swap the best free machine for ``task`` to the top of the free list.

        Preference order: a free non-blacklisted machine on the task's
        preferred rack, else any free non-blacklisted machine, else
        whatever sits on top (every free machine hosted a failure-killed
        copy of this task -- the engine still honours the launch request).
        The blacklist is the set of machines whose copy of this task was
        killed; for an incomplete task those are exactly the failure
        kills, since clone-race kills only happen at task completion.  A
        blacklist covering the whole cluster is forgiven (mirroring
        ``DelayScheduling``): the task has died everywhere, and refusing
        every machine forever would deadlock the run.  Scanning starts
        from the list top so that with no blacklist and a local (or no
        local) machine at the top, the legacy LIFO choice is unchanged.
        """
        free_ids = self.cluster._free_ids
        rack_of = self._rack_of
        preferred = task.preferred_rack
        blacklist = None
        for copy in task.copies:
            if copy.killed_at is not None:
                if blacklist is None:
                    blacklist = {copy.machine_id}
                else:
                    blacklist.add(copy.machine_id)
        if blacklist is not None and len(blacklist) >= self.cluster.num_machines:
            blacklist = None
        top = len(free_ids) - 1
        choice = -1
        fallback = -1
        for i in range(top, -1, -1):
            machine_id = free_ids[i]
            if blacklist is not None and machine_id in blacklist:
                continue
            if rack_of[machine_id] == preferred:
                choice = i
                break
            if fallback < 0:
                fallback = i
        if choice < 0:
            choice = fallback if fallback >= 0 else top
        if choice != top:
            free_ids[choice], free_ids[top] = free_ids[top], free_ids[choice]

    def _launch_copy(self, task: Task) -> TaskCopy:
        cluster = self.cluster
        free_ids = cluster._free_ids
        topology = self._topology_active
        if topology:
            self._place_for_locality(task)
        machine_id = free_ids[-1]
        # Next pre-sampled workload of the task's stage (inlined buffer
        # pop; the refill runs only when clones exhausted the arrival batch).
        buffer = task.job._workloads[task.stage]
        if not buffer:
            buffer = self._refill_workloads(task)
        raw_workload = buffer.pop()
        if self._inflate is not None:
            raw_workload = self._inflate(raw_workload, machine_id, self.rng)
        if self._checkpoint_interval is not None and task.checkpoint_work > 0.0:
            # Resume from the last checkpoint: the fresh draw keeps RNG
            # consumption identical across policies; the saved work is then
            # deducted (with a tiny floor so the copy stays schedulable).
            raw_workload = max(raw_workload - task.checkpoint_work, 1e-9)
            self.result.checkpoint_resumes += 1
        now = self.now
        result = self.result
        machine = cluster._machines[machine_id]
        # Inlined Machine.processing_time / effective_speed: a machine on
        # the free list is up, so only the slowdown branch remains (the
        # no-division path preserves pre-scenario results bit for bit).
        if machine.slowdown == 1.0:
            duration = raw_workload / machine.speed
        else:
            duration = raw_workload / (machine.speed / machine.slowdown)
        penalty = 1.0
        if topology:
            # Remote-read penalty: a copy off its preferred rack processes
            # at effective_speed / remote_slowdown for its whole life (its
            # input does not move), composing multiplicatively with static
            # speeds and dynamic slowdowns.
            if self._rack_of[machine_id] == task.preferred_rack:
                result.local_launches += 1
            else:
                penalty = self._remote_slowdown
                duration *= penalty
                result.remote_launches += 1
        # Inlined TaskCopy construction -- its validation cannot fire
        # (raw_workload is floored strictly positive, now >= 0).
        copy = TaskCopy.__new__(TaskCopy)
        copy.copy_id = next(self._copy_ids)
        copy.task = task
        copy.machine_id = machine_id
        copy.launch_time = now
        copy.workload = duration
        copy.start_time = None
        copy.finish_time = None
        copy.killed_at = None
        copy.work = raw_workload
        copy.finish_version = 0
        copy.remote_penalty = penalty
        job = task.job
        stage = task.stage
        num_active = task._num_active
        if num_active > 0:
            # The task already occupies a machine: this launch is redundant
            # (a clone or a speculative duplicate).  Replacements of
            # failure-killed copies are not counted -- the killed copy no
            # longer holds a machine when the task is re-dispatched.
            result.redundant_copies_launched += 1
        # Inlined Task.add_copy (the task is not complete: _apply_launches
        # validated the request) and ClusterState.place (the copy was just
        # built for the peeked machine, so the id checks cannot fire; a
        # free-listed machine is up and idle, covering Machine.assign).
        task.copies.append(copy)
        if num_active == 0:
            job._unscheduled[stage] -= 1
            job._unscheduled_total -= 1
            if job._stage_ready[stage]:
                job._unscheduled_ready -= 1
        task._num_active = num_active + 1
        job._active_copies += 1
        job._copies_launched += 1
        free_ids.pop()
        machine.current_copy = copy
        machine.copies_hosted += 1
        if stage == 0:
            cluster._map_running += 1
        else:
            cluster._reduce_running += 1
        if topology:
            cluster._rack_running[self._rack_of[machine_id]] += 1
        result.total_copies += 1

        if not job._stage_ready[stage]:
            # Parked: occupies the machine, progresses only once every
            # predecessor stage completes (reduce-behind-map in the 2-node DAG).
            self._parked += 1
            return copy
        # Inlined TaskCopy.start: a just-launched copy is active, unstarted
        # and launched at `now`, so its validation cannot fire.
        copy.start_time = now
        if self._dynamic:
            rate = machine.effective_speed
            if penalty != 1.0:
                rate /= penalty
            self._running[machine_id] = _RunningCopy(
                copy=copy,
                work_remaining=raw_workload,
                settled_at=now,
                rate=rate,
            )
        # Inlined EventHeap.push_finish: a fresh copy's version is 0, so
        # the bump lands on 1 and the entry carries exactly that version.
        copy.finish_version = 1
        heappush(
            self._events._entries,
            (now + duration, 0, next(self._sequence), copy, 1),
        )
        return copy

    def _maybe_schedule_tick(self) -> None:
        interval = self.scheduler.tick_interval
        if interval is None or interval <= 0:
            return
        if not self._alive:
            return
        if self._next_tick is not None and self._next_tick > self.now:
            return
        tick_time = self.now + interval
        self._next_tick = tick_time
        self._push(Event.tick(tick_time, next(self._sequence)))

    def _check_progress_possible(self) -> None:
        """Detect a stuck simulation: pending work, free machines, no way forward.

        Under a dynamic scenario the heap is never empty (failure/repair and
        slowdown renewal chains are perpetual), so heap non-emptiness proves
        nothing.  Only *job-relevant* events can unstick a scheduler that
        declines to launch: a future arrival, the completion of a running
        copy, or a tick.  In dynamic mode ``self._running`` is exactly the
        set of started active copies, which makes the check O(1).
        """
        if self._completed == self._total_jobs:
            return
        if self._dynamic:
            if (
                self._arrived < self._total_jobs
                or self._running
                or self._next_tick is not None
            ):
                return
        elif self._events:
            return
        pending_tasks = sum(
            job.num_unscheduled_tasks for job in self._alive.values()
        )
        if pending_tasks == 0:
            return
        if self.cluster.has_free_machine():
            raise SimulationError(
                "scheduler made no progress: free machines and pending tasks exist "
                "but no launches were issued and no future job-relevant events remain"
            )
        if self._dynamic and self.cluster.num_down == 0:
            # Every machine holds a parked (blocked) copy, nothing is
            # running, arriving or ticking, and no repair can free capacity:
            # machine events alone can never unblock this.  The static path
            # reports the same deadlock after its heap drains.
            raise SimulationError(
                "scheduler deadlocked the cluster: every machine holds a "
                "blocked copy while tasks remain unscheduled and no future "
                "job-relevant events remain"
            )
