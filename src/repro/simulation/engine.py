"""The discrete-event simulation engine.

The engine owns all mutable state (jobs, tasks, copies, machines) and is the
only component allowed to sample task workloads.  It advances time from one
decision point to the next -- job arrivals, copy completions and optional
periodic ticks -- which is equivalent to the paper's per-slot stepping
because machine allocations only change at those points.

Semantics enforced here (Section III of the paper):

* each machine holds at most one copy at a time;
* a reduce copy placed before its job's map phase completes occupies its
  machine but makes no progress until the map phase finishes;
* a task completes when its earliest-finishing copy completes; surviving
  clones are killed at that instant and their machines freed;
* the scheduler is consulted after every batch of simultaneous events.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.cluster.state import ClusterState
from repro.cluster.stragglers import NoStragglers, StragglerModel
from repro.simulation.events import Event, EventType
from repro.simulation.metrics import JobRecord, SimulationResult
from repro.simulation.scheduler_api import LaunchRequest, Scheduler, SchedulerView
from repro.workload.job import Job, Phase, Task, TaskCopy
from repro.workload.trace import Trace

__all__ = ["SimulationEngine", "SimulationError"]


class SimulationError(RuntimeError):
    """Raised when the simulation reaches an inconsistent or stuck state."""


class SimulationEngine:
    """Replays one trace against one scheduler on an ``M``-machine cluster."""

    def __init__(
        self,
        trace: Trace,
        scheduler: Scheduler,
        num_machines: int,
        *,
        seed: int = 0,
        machine_speed: float = 1.0,
        straggler_model: Optional[StragglerModel] = None,
        max_time: Optional[float] = None,
        check_invariants: bool = False,
    ) -> None:
        if num_machines <= 0:
            raise ValueError(f"num_machines must be positive, got {num_machines}")
        if machine_speed <= 0:
            raise ValueError(f"machine_speed must be positive, got {machine_speed}")
        self.trace = trace
        self.scheduler = scheduler
        self.cluster = ClusterState(num_machines, machine_speed=machine_speed)
        self.machine_speed = machine_speed
        self.straggler_model = (
            straggler_model if straggler_model is not None else NoStragglers()
        )
        self.rng = np.random.default_rng(seed)
        self.max_time = max_time
        self.check_invariants = check_invariants

        self.now: float = 0.0
        self._sequence = itertools.count()
        self._copy_ids = itertools.count()
        self._heap: List[Event] = []
        self._jobs: List[Job] = [Job.from_spec(spec) for spec in trace]
        self._alive: Dict[int, Job] = {}
        # Pre-sampled task workloads, one buffer per (job, phase).  Buffers
        # are filled with a single vectorised RNG call per job phase at
        # arrival (and refilled in batches when clones exhaust them), which
        # is far cheaper than one Generator call per copy.
        self._workload_buffers: Dict[Tuple[int, Phase], List[float]] = {}
        self._completed = 0
        self._next_tick: Optional[float] = None
        self.result = SimulationResult(
            scheduler_name=scheduler.name,
            num_machines=num_machines,
            total_tasks=trace.total_tasks,
            seed=seed,
        )
        self.straggler_model.prepare(num_machines, self.rng)
        self._view = SchedulerView(self)

    # ------------------------------------------------------------------ public API

    def alive_jobs(self) -> List[Job]:
        """Arrived, not-yet-finished jobs in arrival order."""
        return list(self._alive.values())

    def run(self) -> SimulationResult:
        """Run the simulation to completion and return the collected metrics."""
        self.scheduler.bind(self._view)
        for job in self._jobs:
            self._push(Event.arrival(job.arrival_time, next(self._sequence), job))

        while self._heap:
            batch = self._pop_simultaneous_events()
            if batch is None:
                break
            if self.max_time is not None and self.now > self.max_time:
                raise SimulationError(
                    f"simulation exceeded max_time={self.max_time} at t={self.now}"
                )
            for event in batch:
                self._handle_event(event)
            if self._completed == len(self._jobs):
                break
            self._invoke_scheduler()
            self._maybe_schedule_tick()
            if self.check_invariants:
                self.cluster.check_invariants()

        if self._completed != len(self._jobs):
            unfinished = [job.job_id for job in self._jobs if not job.is_complete]
            raise SimulationError(
                f"simulation ended with {len(unfinished)} unfinished jobs "
                f"(e.g. {unfinished[:5]}); the scheduler left work unscheduled"
            )
        self.result.makespan = self.now
        return self.result

    # ------------------------------------------------------------------ event plumbing

    def _push(self, event: Event) -> None:
        heapq.heappush(self._heap, event)

    def _pop_simultaneous_events(self) -> Optional[List[Event]]:
        """Pop every event sharing the earliest timestamp, skipping stale ones.

        Dropping stale completions (clones killed after their finish event
        was queued) here guarantees every returned batch starts with a live
        event, so the scheduler is never consulted -- and its view never
        rebuilt -- for a timestamp at which nothing can change.
        """
        batch: List[Event] = []
        while self._heap:
            head = self._heap[0]
            if self._is_stale(head):
                heapq.heappop(self._heap)
                continue
            if not batch:
                self.now = head.time
                batch.append(heapq.heappop(self._heap))
            elif head.time == self.now:
                batch.append(heapq.heappop(self._heap))
            else:
                break
        return batch if batch else None

    @staticmethod
    def _is_stale(event: Event) -> bool:
        """A completion event for a copy that was killed in the meantime."""
        if event.event_type is not EventType.COPY_FINISH:
            return False
        assert event.copy is not None
        return not event.copy.is_active

    def _handle_event(self, event: Event) -> None:
        if event.event_type is EventType.JOB_ARRIVAL:
            self._handle_arrival(event.job)
        elif event.event_type is EventType.COPY_FINISH:
            self._handle_copy_finish(event.copy)
        elif event.event_type is EventType.TICK:
            self._next_tick = None
        else:  # pragma: no cover - defensive
            raise SimulationError(f"unknown event type {event.event_type}")

    def _handle_arrival(self, job: Job) -> None:
        self._alive[job.job_id] = job
        self._presample_workloads(job)
        self.scheduler.on_job_arrival(job, self.now)

    def _presample_workloads(self, job: Job) -> None:
        """Draw one workload per task of ``job`` in two vectorised calls."""
        for phase in (Phase.MAP, Phase.REDUCE):
            count = job.spec.num_tasks(phase)
            if count == 0:
                continue
            buffer = job.spec.duration(phase).sample(self.rng, count).tolist()
            # Reversed so pop() consumes values in draw order.
            buffer.reverse()
            self._workload_buffers[(job.job_id, phase)] = buffer

    def _next_workload(self, task: Task) -> float:
        """Next pre-sampled workload for ``task``'s phase (refill on demand)."""
        key = (task.job.job_id, task.phase)
        buffer = self._workload_buffers.get(key)
        if not buffer:
            # Clones (or relaunches) exhausted the arrival batch; refill
            # with another phase-sized batch to keep RNG calls rare.
            count = max(task.job.spec.num_tasks(task.phase), 1)
            buffer = task.duration_distribution.sample(self.rng, count).tolist()
            buffer.reverse()
            self._workload_buffers[key] = buffer
        return buffer.pop()

    def _handle_copy_finish(self, copy: TaskCopy) -> None:
        if not copy.is_active:
            # Killed by an earlier event in this same batch.
            return
        task = copy.task
        elapsed = copy.elapsed(self.now)
        copy.finish(self.now)
        self.cluster.release(copy, elapsed=elapsed)
        self.result.useful_work += elapsed

        killed = task.complete(self.now)
        for clone in killed:
            clone_elapsed = clone.elapsed(self.now)
            self.cluster.release(clone, elapsed=clone_elapsed)
            self.result.wasted_work += clone_elapsed

        job = task.job
        job_finished = job.notify_task_completion(task, self.now)
        if task.phase is Phase.MAP and job.map_phase_complete:
            self._unblock_reduce_copies(job)
        self.scheduler.on_task_completion(task, self.now)
        if job_finished:
            self._finalize_job(job)

    def _unblock_reduce_copies(self, job: Job) -> None:
        """Start reduce copies that were parked behind the map phase."""
        for task in job.reduce_tasks:
            for copy in task.copies:
                if copy.is_active and copy.is_blocked:
                    copy.start(self.now)
                    self._push(
                        Event.copy_finish(
                            self.now + copy.workload, next(self._sequence), copy
                        )
                    )

    def _finalize_job(self, job: Job) -> None:
        del self._alive[job.job_id]
        self._completed += 1
        self._workload_buffers.pop((job.job_id, Phase.MAP), None)
        self._workload_buffers.pop((job.job_id, Phase.REDUCE), None)
        self.result.add_record(
            JobRecord(
                job_id=job.job_id,
                arrival_time=job.arrival_time,
                completion_time=job.completion_time,
                weight=job.weight,
                num_map_tasks=job.spec.num_map_tasks,
                num_reduce_tasks=job.spec.num_reduce_tasks,
                copies_launched=job.total_copies_launched(),
                map_phase_completion_time=job.map_phase_completion_time,
            )
        )
        self.scheduler.on_job_completion(job, self.now)

    # ------------------------------------------------------------------ scheduling

    def _invoke_scheduler(self) -> None:
        requests = self.scheduler.schedule(self._view)
        self._apply_launches(requests)
        self._check_progress_possible()

    def _apply_launches(self, requests: Sequence[LaunchRequest]) -> None:
        for request in requests:
            task = request.task
            self._validate_request(task)
            for _ in range(request.num_copies):
                if not self.cluster.has_free_machine():
                    self.result.over_requests += 1
                    continue
                self._launch_copy(task)

    def _validate_request(self, task: Task) -> None:
        job = task.job
        if job.arrival_time > self.now + 1e-9:
            raise SimulationError(
                f"scheduler launched task {task.task_id} before its job arrived"
            )
        if task.is_completed:
            raise SimulationError(
                f"scheduler launched already-completed task {task.task_id}"
            )
        if job.is_complete:
            raise SimulationError(
                f"scheduler launched a task of completed job {job.job_id}"
            )

    def _launch_copy(self, task: Task) -> TaskCopy:
        machine_id = self.cluster.peek_free_machine()
        assert machine_id is not None
        raw_workload = self._next_workload(task)
        raw_workload = self.straggler_model.inflate(raw_workload, machine_id, self.rng)
        machine = self.cluster.machine(machine_id)
        duration = machine.processing_time(raw_workload)
        copy = TaskCopy(
            copy_id=next(self._copy_ids),
            task=task,
            machine_id=machine_id,
            launch_time=self.now,
            workload=duration,
        )
        task.add_copy(copy)
        self.cluster.place(copy)
        self.result.total_copies += 1

        job = task.job
        if task.phase is Phase.REDUCE and not job.map_phase_complete:
            # Parked: occupies the machine, progresses only after the map phase.
            return copy
        copy.start(self.now)
        self._push(
            Event.copy_finish(self.now + copy.workload, next(self._sequence), copy)
        )
        return copy

    def _maybe_schedule_tick(self) -> None:
        interval = self.scheduler.tick_interval
        if interval is None or interval <= 0:
            return
        if not self._alive:
            return
        if self._next_tick is not None and self._next_tick > self.now:
            return
        tick_time = self.now + interval
        self._next_tick = tick_time
        self._push(Event.tick(tick_time, next(self._sequence)))

    def _check_progress_possible(self) -> None:
        """Detect a stuck simulation: pending work, free machines, no future events."""
        if self._heap:
            return
        if self._completed == len(self._jobs):
            return
        pending_tasks = sum(
            job.num_unscheduled_map_tasks + job.num_unscheduled_reduce_tasks
            for job in self._alive.values()
        )
        if pending_tasks > 0 and self.cluster.has_free_machine():
            raise SimulationError(
                "scheduler made no progress: free machines and pending tasks exist "
                "but no launches were issued and no future events remain"
            )
