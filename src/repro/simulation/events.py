"""Event types and the indexed event heap of the discrete-event engine.

Events are totally ordered by ``(time, priority, sequence)``.  At equal
timestamps copy completions are processed before anything else, so a copy
that finishes at the exact instant its machine fails (or slows down) still
completes -- the work was done by then.  Machine repairs precede failures
and slowdown transitions so a machine returning at a decision point is
visible to that decision; job arrivals come next; ticks come last because
they exist only to wake progress-monitoring schedulers.

The heap (:class:`EventHeap`) stores plain ``(time, priority, sequence,
event)`` tuples so every comparison during sift-up/down happens at C speed
-- an :class:`Event` is never compared on the hot path (it still defines
``__lt__`` for direct sorting in tests and analysis code).

Decrease-key semantics
----------------------
Copy-finish events carry a ``version`` and the copy itself carries
``finish_version`` -- together they form the heap's *index*: the currently
valid finish entry of a copy is exactly the one whose version matches.
Under dynamic scenarios the engine re-estimates a running copy's finish
time whenever its machine's effective speed changes; the re-estimate is an
O(log n) decrease-key (or increase-key) implemented the standard ``heapq``
way: push a fresh entry with the bumped version and let the superseded one
be dropped lazily at pop time (:meth:`EventHeap.pop_next` /
:meth:`EventHeap.pop_at`), exactly like the finish event of a killed
clone.  Stale entries therefore never reach the engine, never form an
event batch on their own, and never cause a scheduler consultation.
"""

from __future__ import annotations

import enum
import heapq
from typing import List, Optional, Tuple

from repro.workload.job import Job, TaskCopy

__all__ = ["EventType", "Event", "EventHeap"]


class EventType(enum.IntEnum):
    """Kinds of events; the integer value doubles as the same-time priority."""

    COPY_FINISH = 0
    MACHINE_REPAIR = 1
    MACHINE_FAILURE = 2
    MACHINE_SLOWDOWN_START = 3
    MACHINE_SLOWDOWN_END = 4
    JOB_ARRIVAL = 5
    TICK = 6


class Event:
    """One schedulable event (see the module docstring for the ordering)."""

    __slots__ = (
        "time",
        "priority",
        "sequence",
        "event_type",
        "job",
        "copy",
        "machine_id",
        "version",
    )

    def __init__(
        self,
        time: float,
        priority: int,
        sequence: int,
        event_type: EventType,
        job: Optional[Job] = None,
        copy: Optional[TaskCopy] = None,
        machine_id: Optional[int] = None,
        version: int = 0,
    ) -> None:
        self.time = time
        self.priority = priority
        self.sequence = sequence
        self.event_type = event_type
        self.job = job
        self.copy = copy
        self.machine_id = machine_id
        #: Finish-event version (see module docstring); 0 for other types.
        self.version = version

    def __lt__(self, other: "Event") -> bool:
        """Order by ``(time, priority, sequence)`` -- the heap contract."""
        return (self.time, self.priority, self.sequence) < (
            other.time,
            other.priority,
            other.sequence,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Event({self.event_type.name}, t={self.time}, "
            f"seq={self.sequence}, version={self.version})"
        )

    @classmethod
    def arrival(cls, time: float, sequence: int, job: Job) -> "Event":
        """A job entering the cluster."""
        return cls(time, _JOB_ARRIVAL, sequence, EventType.JOB_ARRIVAL, job)

    @classmethod
    def copy_finish(
        cls, time: float, sequence: int, copy: TaskCopy, version: int = 0
    ) -> "Event":
        """A task copy running to completion on its machine."""
        return cls(
            time, _COPY_FINISH, sequence, EventType.COPY_FINISH, None, copy,
            None, version,
        )

    @classmethod
    def tick(cls, time: float, sequence: int) -> "Event":
        """A periodic wake-up requested by the scheduler."""
        return cls(time, _TICK, sequence, EventType.TICK)

    @classmethod
    def machine_failure(cls, time: float, sequence: int, machine_id: int) -> "Event":
        """A machine going down, killing its resident copy."""
        return cls(
            time=time,
            priority=int(EventType.MACHINE_FAILURE),
            sequence=sequence,
            event_type=EventType.MACHINE_FAILURE,
            machine_id=machine_id,
        )

    @classmethod
    def machine_repair(cls, time: float, sequence: int, machine_id: int) -> "Event":
        """A failed machine returning to service."""
        return cls(
            time=time,
            priority=int(EventType.MACHINE_REPAIR),
            sequence=sequence,
            event_type=EventType.MACHINE_REPAIR,
            machine_id=machine_id,
        )

    @classmethod
    def slowdown_start(cls, time: float, sequence: int, machine_id: int) -> "Event":
        """A dynamic straggler period beginning on one machine."""
        return cls(
            time=time,
            priority=int(EventType.MACHINE_SLOWDOWN_START),
            sequence=sequence,
            event_type=EventType.MACHINE_SLOWDOWN_START,
            machine_id=machine_id,
        )

    @classmethod
    def slowdown_end(cls, time: float, sequence: int, machine_id: int) -> "Event":
        """A dynamic straggler period ending (the machine recovers)."""
        return cls(
            time=time,
            priority=int(EventType.MACHINE_SLOWDOWN_END),
            sequence=sequence,
            event_type=EventType.MACHINE_SLOWDOWN_END,
            machine_id=machine_id,
        )


#: Plain-int priorities, bound once (IntEnum -> int conversion per event
#: creation is measurable on the hot path).
_COPY_FINISH = int(EventType.COPY_FINISH)
_JOB_ARRIVAL = int(EventType.JOB_ARRIVAL)
_TICK = int(EventType.TICK)
#: Enum members, bound once for the inlined Event construction above.
_FINISH_TYPE = EventType.COPY_FINISH
_ARRIVAL_TYPE = EventType.JOB_ARRIVAL


class EventHeap:
    """Min-heap of events keyed by ``(time, priority, sequence)``.

    Entries are plain tuples so heap comparisons run at C speed; stale
    copy-finish entries (killed copies, superseded finish estimates) are
    dropped lazily at the head -- see the module docstring for why this is
    an O(log n) decrease-key.
    """

    __slots__ = ("_entries",)

    def __init__(self) -> None:
        self._entries: List[Tuple[float, int, int, Event]] = []

    def __len__(self) -> int:
        """Number of entries, including not-yet-dropped stale ones."""
        return len(self._entries)

    def __bool__(self) -> bool:
        """True while any entry (possibly stale) remains."""
        return bool(self._entries)

    def push(self, event: Event) -> None:
        """Insert ``event``; its ``sequence`` must already be assigned."""
        heapq.heappush(
            self._entries, (event.time, event.priority, event.sequence, event)
        )

    def push_arrival(self, job: Job, time: float, sequence: int) -> None:
        """Queue the arrival of ``job`` (Event construction inlined: this
        runs once per job of the whole trace/stream)."""
        event = Event.__new__(Event)
        event.time = time
        event.priority = _JOB_ARRIVAL
        event.sequence = sequence
        event.event_type = _ARRIVAL_TYPE
        event.job = job
        event.copy = None
        event.machine_id = None
        event.version = 0
        heapq.heappush(self._entries, (time, _JOB_ARRIVAL, sequence, event))

    def push_finish(self, copy: TaskCopy, time: float, sequence: int) -> None:
        """Queue the (only currently valid) finish event of ``copy``.

        Bumping ``copy.finish_version`` invalidates any queued finish entry
        of the same copy -- this is the decrease-key operation used when a
        machine's effective rate changes mid-run.  (Event construction and
        the heap push are inlined: this runs once per launched copy.)
        """
        version = copy.finish_version + 1
        copy.finish_version = version
        event = Event.__new__(Event)
        event.time = time
        event.priority = _COPY_FINISH
        event.sequence = sequence
        event.event_type = _FINISH_TYPE
        event.job = None
        event.copy = copy
        event.machine_id = None
        event.version = version
        heapq.heappush(self._entries, (time, _COPY_FINISH, sequence, event))

    @staticmethod
    def _is_stale(event: Event) -> bool:
        """A finish event for a copy that was killed or re-estimated since."""
        if event.priority != _COPY_FINISH:
            return False
        copy = event.copy
        return (
            copy.finish_time is not None
            or copy.killed_at is not None
            or event.version != copy.finish_version
        )

    def _drop_stale(self) -> None:
        """Remove stale entries from the head so the head entry is live."""
        entries = self._entries
        while entries and self._is_stale(entries[0][3]):
            heapq.heappop(entries)

    def pop_next(self) -> Optional[Event]:
        """Pop and return the earliest live event (``None`` when drained)."""
        # Staleness test inlined (see _is_stale): this loop runs once per
        # simulation step and the extra call frames are measurable.
        entries = self._entries
        pop = heapq.heappop
        while entries:
            head = entries[0][3]
            if head.priority == _COPY_FINISH:
                copy = head.copy
                if (
                    copy.finish_time is not None
                    or copy.killed_at is not None
                    or head.version != copy.finish_version
                ):
                    pop(entries)
                    continue
            return pop(entries)[3]
        return None

    def pop_at(self, time: float) -> Optional[Event]:
        """Pop the earliest live event if it fires exactly at ``time``.

        One combined drop-stale/peek/pop call for the engine's
        simultaneous-batch loop.  Stale entries later than ``time`` are
        left in place -- :meth:`pop_next` drops them when reached.
        """
        entries = self._entries
        pop = heapq.heappop
        while entries:
            first = entries[0]
            if first[0] != time:
                return None
            head = first[3]
            if head.priority == _COPY_FINISH:
                copy = head.copy
                if (
                    copy.finish_time is not None
                    or copy.killed_at is not None
                    or head.version != copy.finish_version
                ):
                    pop(entries)
                    continue
            return pop(entries)[3]
        return None
