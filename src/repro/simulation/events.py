"""Event types and the indexed event heap of the discrete-event engine.

Events are totally ordered by ``(time, priority, sequence)``.  At equal
timestamps copy completions are processed before anything else, so a copy
that finishes at the exact instant its machine fails (or slows down) still
completes -- the work was done by then.  Machine repairs precede failures
and slowdown transitions so a machine returning at a decision point is
visible to that decision; job arrivals come next; ticks come last because
they exist only to wake progress-monitoring schedulers.

The heap (:class:`EventHeap`) stores plain ``(time, priority, sequence,
payload, version)`` tuples so every comparison during sift-up/down happens
at C speed -- and the two per-job event kinds (arrivals, copy finishes)
carry their :class:`~repro.workload.job.Job` / :class:`~repro.workload.job
.TaskCopy` payload *directly* in the tuple, so the hot path never
allocates an :class:`Event` at all.  ``Event`` objects still exist as the
payload of the rare event kinds (machine failures/repairs, slowdown
transitions, ticks) and for tests and analysis code (they define
``__lt__`` for direct sorting); the uniqueness of ``sequence`` guarantees
tuple comparisons never reach the payload slot.

Same-timestamp batches
----------------------
All events at one timestamp form a single *batch*: the engine drains them
all -- in ``(priority, sequence)`` order -- before consulting the
scheduler, so :class:`~repro.simulation.scheduler_api.ComposedScheduler`
sees exactly one decision point per unique simulated time no matter how
many events coincide there.  :meth:`EventHeap.pop_entry` /
:meth:`EventHeap.pop_entry_at` are the fused allocation-free form of that
drain used by the engine loop; :meth:`EventHeap.pop_time_batch` is the
same contract materialised as an explicit ``(time, [entries])`` batch for
invariant tests and non-hot callers.

Decrease-key semantics
----------------------
Copy-finish events carry a ``version`` and the copy itself carries
``finish_version`` -- together they form the heap's *index*: the currently
valid finish entry of a copy is exactly the one whose version matches.
Under dynamic scenarios the engine re-estimates a running copy's finish
time whenever its machine's effective speed changes; the re-estimate is an
O(log n) decrease-key (or increase-key) implemented the standard ``heapq``
way: push a fresh entry with the bumped version and let the superseded one
be dropped lazily at pop time (:meth:`EventHeap.pop_entry` /
:meth:`EventHeap.pop_entry_at`), exactly like the finish event of a killed
clone.  Stale entries therefore never reach the engine, never form an
event batch on their own, and never cause a scheduler consultation.
"""

from __future__ import annotations

import enum
import heapq
from typing import List, Optional, Tuple

from repro.workload.job import Job, TaskCopy

__all__ = ["EventType", "Event", "EventHeap"]


class EventType(enum.IntEnum):
    """Kinds of events; the integer value doubles as the same-time priority."""

    COPY_FINISH = 0
    MACHINE_REPAIR = 1
    MACHINE_FAILURE = 2
    MACHINE_SLOWDOWN_START = 3
    MACHINE_SLOWDOWN_END = 4
    JOB_ARRIVAL = 5
    TICK = 6


class Event:
    """One schedulable event (see the module docstring for the ordering)."""

    __slots__ = (
        "time",
        "priority",
        "sequence",
        "event_type",
        "job",
        "copy",
        "machine_id",
        "version",
    )

    def __init__(
        self,
        time: float,
        priority: int,
        sequence: int,
        event_type: EventType,
        job: Optional[Job] = None,
        copy: Optional[TaskCopy] = None,
        machine_id: Optional[int] = None,
        version: int = 0,
    ) -> None:
        self.time = time
        self.priority = priority
        self.sequence = sequence
        self.event_type = event_type
        self.job = job
        self.copy = copy
        self.machine_id = machine_id
        #: Finish-event version (see module docstring); 0 for other types.
        self.version = version

    def __lt__(self, other: "Event") -> bool:
        """Order by ``(time, priority, sequence)`` -- the heap contract."""
        return (self.time, self.priority, self.sequence) < (
            other.time,
            other.priority,
            other.sequence,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Event({self.event_type.name}, t={self.time}, "
            f"seq={self.sequence}, version={self.version})"
        )

    @classmethod
    def arrival(cls, time: float, sequence: int, job: Job) -> "Event":
        """A job entering the cluster."""
        return cls(time, _JOB_ARRIVAL, sequence, EventType.JOB_ARRIVAL, job)

    @classmethod
    def copy_finish(
        cls, time: float, sequence: int, copy: TaskCopy, version: int = 0
    ) -> "Event":
        """A task copy running to completion on its machine."""
        return cls(
            time, _COPY_FINISH, sequence, EventType.COPY_FINISH, None, copy,
            None, version,
        )

    @classmethod
    def tick(cls, time: float, sequence: int) -> "Event":
        """A periodic wake-up requested by the scheduler."""
        return cls(time, _TICK, sequence, EventType.TICK)

    @classmethod
    def machine_failure(cls, time: float, sequence: int, machine_id: int) -> "Event":
        """A machine going down, killing its resident copy."""
        return cls(
            time=time,
            priority=int(EventType.MACHINE_FAILURE),
            sequence=sequence,
            event_type=EventType.MACHINE_FAILURE,
            machine_id=machine_id,
        )

    @classmethod
    def machine_repair(cls, time: float, sequence: int, machine_id: int) -> "Event":
        """A failed machine returning to service."""
        return cls(
            time=time,
            priority=int(EventType.MACHINE_REPAIR),
            sequence=sequence,
            event_type=EventType.MACHINE_REPAIR,
            machine_id=machine_id,
        )

    @classmethod
    def slowdown_start(cls, time: float, sequence: int, machine_id: int) -> "Event":
        """A dynamic straggler period beginning on one machine."""
        return cls(
            time=time,
            priority=int(EventType.MACHINE_SLOWDOWN_START),
            sequence=sequence,
            event_type=EventType.MACHINE_SLOWDOWN_START,
            machine_id=machine_id,
        )

    @classmethod
    def slowdown_end(cls, time: float, sequence: int, machine_id: int) -> "Event":
        """A dynamic straggler period ending (the machine recovers)."""
        return cls(
            time=time,
            priority=int(EventType.MACHINE_SLOWDOWN_END),
            sequence=sequence,
            event_type=EventType.MACHINE_SLOWDOWN_END,
            machine_id=machine_id,
        )


#: Plain-int priorities, bound once (IntEnum -> int conversion per event
#: creation is measurable on the hot path).
_COPY_FINISH = int(EventType.COPY_FINISH)
_JOB_ARRIVAL = int(EventType.JOB_ARRIVAL)
_TICK = int(EventType.TICK)


#: A heap entry: ``(time, priority, sequence, payload, version)``.  The
#: payload is a :class:`~repro.workload.job.Job` for arrivals, a
#: :class:`~repro.workload.job.TaskCopy` for copy finishes, and an
#: :class:`Event` for everything else; ``version`` is the finish-event
#: version (0 for all other kinds).
HeapEntry = Tuple[float, int, int, object, int]


class EventHeap:
    """Min-heap of events keyed by ``(time, priority, sequence)``.

    Entries are plain tuples so heap comparisons run at C speed, with the
    per-job payloads stored directly in the tuple (no :class:`Event`
    allocation on the hot path); stale copy-finish entries (killed copies,
    superseded finish estimates) are dropped lazily at the head -- see the
    module docstring for why this is an O(log n) decrease-key.
    """

    __slots__ = ("_entries",)

    def __init__(self) -> None:
        self._entries: List[HeapEntry] = []

    def __len__(self) -> int:
        """Number of entries, including not-yet-dropped stale ones."""
        return len(self._entries)

    def __bool__(self) -> bool:
        """True while any entry (possibly stale) remains."""
        return bool(self._entries)

    def push(self, event: Event) -> None:
        """Insert ``event``; its ``sequence`` must already be assigned."""
        heapq.heappush(
            self._entries,
            (event.time, event.priority, event.sequence, event, event.version),
        )

    def push_arrival(self, job: Job, time: float, sequence: int) -> None:
        """Queue the arrival of ``job``.

        The job itself is the entry payload -- no :class:`Event` is
        allocated (this runs once per job of the whole trace/stream).
        """
        heapq.heappush(self._entries, (time, _JOB_ARRIVAL, sequence, job, 0))

    def push_finish(self, copy: TaskCopy, time: float, sequence: int) -> None:
        """Queue the (only currently valid) finish event of ``copy``.

        Bumping ``copy.finish_version`` invalidates any queued finish entry
        of the same copy -- this is the decrease-key operation used when a
        machine's effective rate changes mid-run.  The copy itself is the
        entry payload (no :class:`Event` allocation; this runs once per
        launched copy).
        """
        version = copy.finish_version + 1
        copy.finish_version = version
        heapq.heappush(
            self._entries, (time, _COPY_FINISH, sequence, copy, version)
        )

    @staticmethod
    def _is_stale(entry: HeapEntry) -> bool:
        """A finish entry for a copy that was killed or re-estimated since."""
        if entry[1] != _COPY_FINISH:
            return False
        copy = entry[3]
        return (
            copy.finish_time is not None
            or copy.killed_at is not None
            or entry[4] != copy.finish_version
        )

    def _drop_stale(self) -> None:
        """Remove stale entries from the head so the head entry is live."""
        entries = self._entries
        while entries and self._is_stale(entries[0]):
            heapq.heappop(entries)

    def pop_entry(self) -> Optional[HeapEntry]:
        """Pop and return the earliest live entry (``None`` when drained)."""
        # Staleness test inlined (see _is_stale): this loop runs once per
        # simulation step and the extra call frames are measurable.
        entries = self._entries
        pop = heapq.heappop
        while entries:
            head = entries[0]
            if head[1] == _COPY_FINISH:
                copy = head[3]
                if (
                    copy.finish_time is not None
                    or copy.killed_at is not None
                    or head[4] != copy.finish_version
                ):
                    pop(entries)
                    continue
            return pop(entries)
        return None

    def pop_entry_at(self, time: float) -> Optional[HeapEntry]:
        """Pop the earliest live entry if it fires exactly at ``time``.

        One combined drop-stale/peek/pop call for the engine's fused
        same-timestamp batch drain.  Stale entries later than ``time`` are
        left in place -- :meth:`pop_entry` drops them when reached.
        """
        entries = self._entries
        pop = heapq.heappop
        while entries:
            first = entries[0]
            if first[0] != time:
                return None
            if first[1] == _COPY_FINISH:
                copy = first[3]
                if (
                    copy.finish_time is not None
                    or copy.killed_at is not None
                    or first[4] != copy.finish_version
                ):
                    pop(entries)
                    continue
            return pop(entries)
        return None

    def pop_time_batch(self) -> Optional[Tuple[float, List[HeapEntry]]]:
        """Pop *every* live entry at the earliest live timestamp.

        Returns ``(time, entries)`` with the entries in their global
        ``(priority, sequence)`` order, or ``None`` when the heap is
        drained.  This is the same-timestamp batch contract in explicit
        form: the engine's hot loop fuses the drain with event handling
        (one :meth:`pop_entry` then :meth:`pop_entry_at` until exhausted,
        which yields entries in exactly this order without building the
        list); invariant tests use this method as the reference shape.
        """
        first = self.pop_entry()
        if first is None:
            return None
        time = first[0]
        batch = [first]
        push = batch.append
        entry = self.pop_entry_at(time)
        while entry is not None:
            push(entry)
            entry = self.pop_entry_at(time)
        return time, batch
