"""Event types of the discrete-event engine.

Events are totally ordered by ``(time, priority, sequence)``.  At equal
timestamps copy completions are processed before anything else, so a copy
that finishes at the exact instant its machine fails (or slows down) still
completes -- the work was done by then.  Machine repairs precede failures
and slowdown transitions so a machine returning at a decision point is
visible to that decision; job arrivals come next; ticks come last because
they exist only to wake progress-monitoring schedulers.

Copy-finish events carry a ``version``: under dynamic scenarios the engine
re-estimates a running copy's finish time whenever its machine's effective
speed changes, pushing a *new* finish event and bumping the copy's
``finish_version``.  A finish event whose version no longer matches its
copy's is stale and is dropped at pop time, exactly like the finish event of
a killed clone.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional

from repro.workload.job import Job, TaskCopy

__all__ = ["EventType", "Event"]


class EventType(enum.IntEnum):
    """Kinds of events; the integer value doubles as the same-time priority."""

    COPY_FINISH = 0
    MACHINE_REPAIR = 1
    MACHINE_FAILURE = 2
    MACHINE_SLOWDOWN_START = 3
    MACHINE_SLOWDOWN_END = 4
    JOB_ARRIVAL = 5
    TICK = 6


@dataclass(order=True)
class Event:
    """One entry of the event heap."""

    time: float
    priority: int
    sequence: int
    event_type: EventType = field(compare=False)
    job: Optional[Job] = field(default=None, compare=False)
    copy: Optional[TaskCopy] = field(default=None, compare=False)
    machine_id: Optional[int] = field(default=None, compare=False)
    #: Finish-event version (see module docstring); 0 for other event types.
    version: int = field(default=0, compare=False)

    @classmethod
    def arrival(cls, time: float, sequence: int, job: Job) -> "Event":
        """A job entering the cluster."""
        return cls(
            time=time,
            priority=int(EventType.JOB_ARRIVAL),
            sequence=sequence,
            event_type=EventType.JOB_ARRIVAL,
            job=job,
        )

    @classmethod
    def copy_finish(
        cls, time: float, sequence: int, copy: TaskCopy, version: int = 0
    ) -> "Event":
        """A task copy running to completion on its machine."""
        return cls(
            time=time,
            priority=int(EventType.COPY_FINISH),
            sequence=sequence,
            event_type=EventType.COPY_FINISH,
            copy=copy,
            version=version,
        )

    @classmethod
    def tick(cls, time: float, sequence: int) -> "Event":
        """A periodic wake-up requested by the scheduler."""
        return cls(
            time=time,
            priority=int(EventType.TICK),
            sequence=sequence,
            event_type=EventType.TICK,
        )

    @classmethod
    def machine_failure(cls, time: float, sequence: int, machine_id: int) -> "Event":
        """A machine going down, killing its resident copy."""
        return cls(
            time=time,
            priority=int(EventType.MACHINE_FAILURE),
            sequence=sequence,
            event_type=EventType.MACHINE_FAILURE,
            machine_id=machine_id,
        )

    @classmethod
    def machine_repair(cls, time: float, sequence: int, machine_id: int) -> "Event":
        """A failed machine returning to service."""
        return cls(
            time=time,
            priority=int(EventType.MACHINE_REPAIR),
            sequence=sequence,
            event_type=EventType.MACHINE_REPAIR,
            machine_id=machine_id,
        )

    @classmethod
    def slowdown_start(cls, time: float, sequence: int, machine_id: int) -> "Event":
        """A dynamic straggler period beginning on one machine."""
        return cls(
            time=time,
            priority=int(EventType.MACHINE_SLOWDOWN_START),
            sequence=sequence,
            event_type=EventType.MACHINE_SLOWDOWN_START,
            machine_id=machine_id,
        )

    @classmethod
    def slowdown_end(cls, time: float, sequence: int, machine_id: int) -> "Event":
        """A dynamic straggler period ending (the machine recovers)."""
        return cls(
            time=time,
            priority=int(EventType.MACHINE_SLOWDOWN_END),
            sequence=sequence,
            event_type=EventType.MACHINE_SLOWDOWN_END,
            machine_id=machine_id,
        )
