"""Event types of the discrete-event engine.

Events are totally ordered by ``(time, priority, sequence)``.  At equal
timestamps copy completions are processed before job arrivals so that the
machines freed by a completing task are visible to the scheduling decision
triggered by a simultaneous arrival; ticks come last because they exist only
to wake progress-monitoring schedulers.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional

from repro.workload.job import Job, TaskCopy

__all__ = ["EventType", "Event"]


class EventType(enum.IntEnum):
    """Kinds of events; the integer value doubles as the same-time priority."""

    COPY_FINISH = 0
    JOB_ARRIVAL = 1
    TICK = 2


@dataclass(order=True)
class Event:
    """One entry of the event heap."""

    time: float
    priority: int
    sequence: int
    event_type: EventType = field(compare=False)
    job: Optional[Job] = field(default=None, compare=False)
    copy: Optional[TaskCopy] = field(default=None, compare=False)

    @classmethod
    def arrival(cls, time: float, sequence: int, job: Job) -> "Event":
        """A job entering the cluster."""
        return cls(
            time=time,
            priority=int(EventType.JOB_ARRIVAL),
            sequence=sequence,
            event_type=EventType.JOB_ARRIVAL,
            job=job,
        )

    @classmethod
    def copy_finish(cls, time: float, sequence: int, copy: TaskCopy) -> "Event":
        """A task copy running to completion on its machine."""
        return cls(
            time=time,
            priority=int(EventType.COPY_FINISH),
            sequence=sequence,
            event_type=EventType.COPY_FINISH,
            copy=copy,
        )

    @classmethod
    def tick(cls, time: float, sequence: int) -> "Event":
        """A periodic wake-up requested by the scheduler."""
        return cls(
            time=time,
            priority=int(EventType.TICK),
            sequence=sequence,
            event_type=EventType.TICK,
        )
