"""Deprecated shim: the execution path lives in ``experiment_runner``.

Historically this module owned :func:`run_simulation`,
:class:`ReplicatedResult` and :func:`run_replications` while
:mod:`repro.simulation.experiment_runner` owned the batch/parallel path --
two modules, one job.  They were consolidated into
:mod:`repro.simulation.experiment_runner` (or, equivalently, the
:mod:`repro.simulation` package namespace), which is the single execution
path; this module survives only so old imports keep working.

Importing names from here emits a :class:`DeprecationWarning`; new code
should do::

    from repro.simulation import ReplicatedResult, run_replications, run_simulation
"""

from __future__ import annotations

import warnings

from repro.simulation import experiment_runner as _impl

__all__ = ["run_simulation", "run_replications", "ReplicatedResult"]


def __getattr__(name: str):
    """Forward attribute access to ``experiment_runner``, with a warning."""
    if name in __all__:
        warnings.warn(
            f"repro.simulation.runner.{name} moved to "
            f"repro.simulation.experiment_runner (import it from there or "
            f"from the repro.simulation package)",
            DeprecationWarning,
            stacklevel=2,
        )
        return getattr(_impl, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def __dir__() -> list:
    """Expose the forwarded names to introspection."""
    return sorted(__all__)
