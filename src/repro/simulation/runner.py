"""Convenience wrappers for running (replicated) simulations.

The paper repeats every simulation ten times and reports the average
(Section VI); :func:`run_replications` reproduces that protocol: one run per
seed with a freshly constructed scheduler, aggregated into a
:class:`ReplicatedResult`.
"""

from __future__ import annotations

import time as _time
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

import numpy as np

from repro.cluster.stragglers import StragglerModel
from repro.scenarios import ScenarioSpec
from repro.simulation.engine import SimulationEngine
from repro.simulation.metrics import SimulationResult
from repro.simulation.scheduler_api import Scheduler
from repro.workload.trace import Trace

__all__ = ["run_simulation", "run_replications", "ReplicatedResult"]


def run_simulation(
    trace: Trace,
    scheduler: Scheduler,
    num_machines: int,
    *,
    seed: int = 0,
    machine_speed: float = 1.0,
    straggler_model: Optional[StragglerModel] = None,
    scenario: Optional[ScenarioSpec] = None,
    max_time: Optional[float] = None,
    check_invariants: bool = False,
) -> SimulationResult:
    """Run one simulation and return its metrics.

    Parameters mirror :class:`~repro.simulation.engine.SimulationEngine`;
    ``seed`` controls both the workload sampling and any randomised
    tie-breaking inside the engine (scenario processes draw from dedicated
    streams derived from the same seed).
    """
    engine = SimulationEngine(
        trace=trace,
        scheduler=scheduler,
        num_machines=num_machines,
        seed=seed,
        machine_speed=machine_speed,
        straggler_model=straggler_model,
        scenario=scenario,
        max_time=max_time,
        check_invariants=check_invariants,
    )
    started = _time.perf_counter()
    result = engine.run()
    result.runtime_seconds = _time.perf_counter() - started
    return result


@dataclass
class ReplicatedResult:
    """Aggregate of several runs of the same configuration with different seeds."""

    scheduler_name: str
    results: List[SimulationResult] = field(default_factory=list)

    @property
    def num_replications(self) -> int:
        """Number of runs aggregated."""
        return len(self.results)

    def _metric(self, name: str) -> np.ndarray:
        return np.array([getattr(result, name) for result in self.results], dtype=float)

    @property
    def mean_flowtime(self) -> float:
        """Average over replications of the unweighted mean flowtime."""
        return float(self._metric("mean_flowtime").mean())

    @property
    def weighted_mean_flowtime(self) -> float:
        """Average over replications of the weighted mean flowtime."""
        return float(self._metric("weighted_mean_flowtime").mean())

    @property
    def mean_flowtime_std(self) -> float:
        """Standard deviation across replications of the unweighted mean."""
        return float(self._metric("mean_flowtime").std(ddof=0))

    @property
    def weighted_mean_flowtime_std(self) -> float:
        """Standard deviation across replications of the weighted mean."""
        return float(self._metric("weighted_mean_flowtime").std(ddof=0))

    @property
    def mean_makespan(self) -> float:
        """Average makespan across replications."""
        return float(self._metric("makespan").mean())

    @property
    def mean_cloning_ratio(self) -> float:
        """Average copies-per-task ratio across replications."""
        return float(self._metric("cloning_ratio").mean())

    def fraction_completed_within(self, limit: float) -> float:
        """Replication-averaged fraction of jobs finishing within ``limit``."""
        values = [result.fraction_completed_within(limit) for result in self.results]
        return float(np.mean(values))

    def flowtime_cdf(self, points: Sequence[float]) -> np.ndarray:
        """Replication-averaged empirical CDF evaluated at ``points``."""
        curves = [result.flowtime_cdf(points) for result in self.results]
        return np.mean(np.stack(curves, axis=0), axis=0)

    def summary(self) -> dict:
        """Flat dictionary of the headline replication metrics."""
        return {
            "scheduler": self.scheduler_name,
            "replications": self.num_replications,
            "mean_flowtime": self.mean_flowtime,
            "mean_flowtime_std": self.mean_flowtime_std,
            "weighted_mean_flowtime": self.weighted_mean_flowtime,
            "weighted_mean_flowtime_std": self.weighted_mean_flowtime_std,
            "mean_makespan": self.mean_makespan,
            "mean_cloning_ratio": self.mean_cloning_ratio,
        }


def run_replications(
    trace: Trace,
    scheduler_factory: Callable[[], Scheduler],
    num_machines: int,
    *,
    seeds: Sequence[int] = (0, 1, 2),
    machine_speed: float = 1.0,
    straggler_model_factory: Optional[Callable[[], StragglerModel]] = None,
    scenario: Optional[ScenarioSpec] = None,
    max_time: Optional[float] = None,
    workers: Optional[int] = 1,
) -> ReplicatedResult:
    """Run the same (trace, scheduler, cluster) configuration once per seed.

    A fresh scheduler instance is built per replication because schedulers
    carry state (priority queues, per-job bookkeeping) that must not leak
    between runs.  With ``workers > 1`` the replications fan out over a
    process pool (``scheduler_factory`` and ``straggler_model_factory``
    must then be picklable -- use
    :class:`~repro.simulation.experiment_runner.SchedulerSpec` rather than
    a lambda); results are bit-identical to ``workers=1`` for the same
    seeds.
    """
    from repro.simulation.experiment_runner import ExperimentRunner

    return ExperimentRunner(workers=workers).run_replications(
        trace,
        scheduler_factory,
        num_machines,
        seeds=seeds,
        machine_speed=machine_speed,
        straggler_model_factory=straggler_model_factory,
        scenario=scenario,
        max_time=max_time,
    )
