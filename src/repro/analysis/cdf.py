"""Empirical flowtime CDFs over the paper's two ranges (Figures 4 and 5).

Figure 4 plots the cumulative fraction of jobs against flowtime for the
small-job range 0-300 s (25 s grid); Figure 5 does the same for the big-job
range 0-4000 s (500 s grid).  Both are cumulative fractions over *all* jobs
(the y-axis of Figure 5 starts around 0.7 because most jobs are small), so
the curves here are plain CDFs of the full flowtime distribution evaluated
on the two grids.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Union

import numpy as np

from repro.simulation.metrics import SimulationResult
from repro.simulation.experiment_runner import ReplicatedResult

__all__ = [
    "SMALL_JOB_GRID",
    "BIG_JOB_GRID",
    "cdf_curve",
    "cdf_comparison",
    "render_cdf_table",
]

#: Figure 4's x-axis: 0 to 300 seconds in 25-second steps.
SMALL_JOB_GRID: List[float] = [float(x) for x in range(0, 301, 25)]

#: Figure 5's x-axis: 0 to 4000 seconds in 500-second steps.
BIG_JOB_GRID: List[float] = [float(x) for x in range(0, 4001, 500)]

ResultLike = Union[SimulationResult, ReplicatedResult]


def cdf_curve(result: ResultLike, points: Sequence[float]) -> np.ndarray:
    """Cumulative fraction of jobs with flowtime <= each of ``points``."""
    if not points:
        raise ValueError("points must not be empty")
    return np.asarray(result.flowtime_cdf(points), dtype=float)


def cdf_comparison(
    results: Dict[str, ResultLike], points: Sequence[float]
) -> Dict[str, np.ndarray]:
    """CDF curves of several schedulers on the same grid, keyed by name."""
    return {name: cdf_curve(result, points) for name, result in results.items()}


def render_cdf_table(
    curves: Dict[str, Iterable[float]], points: Sequence[float], title: str = ""
) -> str:
    """Text rendering of CDF curves: one row per grid point, one column per policy."""
    from repro.experiments.report import render_columns

    return render_columns(
        "flowtime (s)",
        list(points),
        {name: list(values) for name, values in curves.items()},
        title=title,
        precision=3,
        column_width=12,
        x_width=14,
        x_format=lambda point: f"{point:.0f}",
    )
