"""Empirical validation of the paper's analytical results.

:func:`offline_bound_check` measures, for an offline (bulk-arrival) run of
Algorithm 1, how often the Theorem 1 per-job flowtime bound holds and what
empirical competitive ratio the schedule achieved against the Remark 2 lower
bound.  The unit tests and the ``offline_bound`` experiment use it to verify
that:

* with deterministic task durations every job satisfies the bound and the
  weighted flowtime is within a factor of ~2 of the lower bound (Remark 2);
* with noisy durations the fraction of jobs satisfying the bound is at least
  the Theorem 1 probability ``(1 - 1/r^2)^2`` (up to sampling error).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.core.bounds import (
    empirical_competitive_ratio,
    offline_flowtime_bounds,
    theorem1_probability,
)
from repro.simulation.metrics import SimulationResult
from repro.workload.trace import Trace

__all__ = ["OfflineBoundReport", "offline_bound_check"]


@dataclass(frozen=True)
class OfflineBoundReport:
    """Outcome of comparing measured flowtimes against Theorem 1 / Remark 2."""

    num_jobs: int
    num_satisfying_bound: int
    theoretical_probability: float
    empirical_competitive_ratio: float
    max_bound_violation: float

    @property
    def fraction_satisfying_bound(self) -> float:
        """Fraction of runs whose flowtime meets the theoretical bound."""
        if self.num_jobs == 0:
            return 0.0
        return self.num_satisfying_bound / self.num_jobs

    def render(self) -> str:
        """Human-readable report of this experiment's results."""
        return "\n".join(
            [
                f"jobs                        : {self.num_jobs}",
                f"satisfy Theorem 1 bound     : {self.num_satisfying_bound} "
                f"({100.0 * self.fraction_satisfying_bound:.1f}%)",
                f"Theorem 1 probability       : {100.0 * self.theoretical_probability:.1f}%",
                f"empirical competitive ratio : {self.empirical_competitive_ratio:.3f}",
                f"max bound violation (s)     : {self.max_bound_violation:.2f}",
            ]
        )


def offline_bound_check(
    result: SimulationResult,
    trace: Trace,
    num_machines: int,
    r: float,
    slack: float = 1e-6,
    include_map_critical_path: bool = True,
) -> OfflineBoundReport:
    """Compare measured per-job flowtimes against the Theorem 1 bounds.

    ``include_map_critical_path`` (default) adds the per-job
    ``E_i^m + r sigma_i^m`` correction of
    :func:`repro.core.bounds.map_critical_path_correction`: the literal
    Theorem 1 bound omits the job's own map->reduce serial path and can
    therefore fall below the trivial lower bound for small two-phase jobs.
    ``slack`` additionally absorbs floating-point noise and the integrality
    of whole tasks on whole machines.

    For the zero-variance (deterministic) regime the reported theoretical
    probability is 1.0 (Remark 2: the bound is deterministic); otherwise it
    is the Theorem 1 value ``(1 - 1/r^2)^2``.
    """
    bounds: Dict[int, float] = offline_flowtime_bounds(
        list(trace),
        num_machines,
        r,
        include_map_critical_path=include_map_critical_path,
    )
    satisfied = 0
    worst_violation = 0.0
    for record in result.records:
        bound = bounds[record.job_id]
        if record.flowtime <= bound + slack:
            satisfied += 1
        else:
            worst_violation = max(worst_violation, record.flowtime - bound)
    ratio = empirical_competitive_ratio(
        result.total_weighted_flowtime, list(trace), num_machines
    )
    zero_variance = all(
        spec.map_duration.std == 0 and spec.reduce_duration.std == 0
        for spec in trace
    )
    probability = 1.0 if zero_variance else theorem1_probability(max(r, 1.0))
    return OfflineBoundReport(
        num_jobs=result.num_jobs,
        num_satisfying_bound=satisfied,
        theoretical_probability=probability,
        empirical_competitive_ratio=ratio,
        max_bound_violation=worst_violation,
    )
