"""Result analysis: CDFs, summary statistics, cross-scheduler comparison, theory checks."""

from repro.analysis.cdf import (
    BIG_JOB_GRID,
    SMALL_JOB_GRID,
    cdf_comparison,
    cdf_curve,
    render_cdf_table,
)
from repro.analysis.comparison import ComparisonTable, percentage_improvement
from repro.analysis.stats import confidence_interval, describe, relative_difference
from repro.analysis.theory import (
    offline_bound_check,
    OfflineBoundReport,
)

__all__ = [
    "SMALL_JOB_GRID",
    "BIG_JOB_GRID",
    "cdf_curve",
    "cdf_comparison",
    "render_cdf_table",
    "ComparisonTable",
    "percentage_improvement",
    "confidence_interval",
    "describe",
    "relative_difference",
    "offline_bound_check",
    "OfflineBoundReport",
]
