"""Small statistics helpers shared by the experiments and benchmarks."""

from __future__ import annotations

import math
from typing import Dict, Sequence, Tuple

import numpy as np

__all__ = ["describe", "confidence_interval", "relative_difference"]


def describe(values: Sequence[float]) -> Dict[str, float]:
    """Mean, std, min, max, median of a sample (population std, ddof=0)."""
    data = np.asarray(list(values), dtype=float)
    if data.size == 0:
        raise ValueError("cannot describe an empty sample")
    return {
        "count": int(data.size),
        "mean": float(data.mean()),
        "std": float(data.std(ddof=0)),
        "min": float(data.min()),
        "max": float(data.max()),
        "median": float(np.median(data)),
    }


def confidence_interval(
    values: Sequence[float], z: float = 1.96
) -> Tuple[float, float]:
    """Normal-approximation confidence interval of the sample mean.

    Used to annotate replication averages; with the paper's ten replications
    a normal approximation is what one would report anyway.
    """
    data = np.asarray(list(values), dtype=float)
    if data.size == 0:
        raise ValueError("cannot compute a confidence interval of an empty sample")
    mean = float(data.mean())
    if data.size == 1:
        return mean, mean
    half_width = z * float(data.std(ddof=1)) / math.sqrt(data.size)
    return mean - half_width, mean + half_width


def relative_difference(value: float, baseline: float) -> float:
    """``(baseline - value) / baseline``: positive means ``value`` is better (smaller)."""
    if baseline == 0:
        raise ValueError("baseline must be non-zero")
    return (baseline - value) / baseline
