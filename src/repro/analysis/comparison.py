"""Cross-scheduler comparison tables (Figure 6 of the paper).

Figure 6 is a bar chart of the unweighted and weighted average job flowtime
for SRPTMS+C, SCA and Mantri; the headline claim is that SRPTMS+C reduces
both metrics by roughly 25% relative to Mantri.  :class:`ComparisonTable`
holds the per-scheduler numbers, computes improvements relative to a chosen
baseline and renders a plain-text table.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Union

from repro.simulation.metrics import SimulationResult
from repro.simulation.experiment_runner import ReplicatedResult

__all__ = ["ComparisonTable", "percentage_improvement"]

ResultLike = Union[SimulationResult, ReplicatedResult]


def percentage_improvement(value: float, baseline: float) -> float:
    """Percent reduction of ``value`` relative to ``baseline`` (positive = better)."""
    if baseline <= 0:
        raise ValueError(f"baseline must be positive, got {baseline}")
    return 100.0 * (baseline - value) / baseline


@dataclass
class ComparisonRow:
    """One scheduler's headline metrics."""

    scheduler: str
    mean_flowtime: float
    weighted_mean_flowtime: float

    def as_dict(self) -> Dict[str, float]:
        """The comparison table as a plain dictionary."""
        return {
            "scheduler": self.scheduler,
            "mean_flowtime": self.mean_flowtime,
            "weighted_mean_flowtime": self.weighted_mean_flowtime,
        }


@dataclass
class ComparisonTable:
    """Figure-6-style comparison of several schedulers."""

    rows: List[ComparisonRow] = field(default_factory=list)

    @classmethod
    def from_results(cls, results: Dict[str, ResultLike]) -> "ComparisonTable":
        """Build a table from ``{scheduler name: result}``."""
        table = cls()
        for name, result in results.items():
            table.rows.append(
                ComparisonRow(
                    scheduler=name,
                    mean_flowtime=result.mean_flowtime,
                    weighted_mean_flowtime=result.weighted_mean_flowtime,
                )
            )
        return table

    def row(self, scheduler: str) -> ComparisonRow:
        """One scheduler's row of the comparison table."""
        for entry in self.rows:
            if entry.scheduler == scheduler:
                return entry
        raise KeyError(f"no row for scheduler {scheduler!r}")

    def improvement_over(
        self, scheduler: str, baseline: str, weighted: bool = False
    ) -> float:
        """Percent flowtime reduction of ``scheduler`` relative to ``baseline``."""
        target = self.row(scheduler)
        reference = self.row(baseline)
        if weighted:
            return percentage_improvement(
                target.weighted_mean_flowtime, reference.weighted_mean_flowtime
            )
        return percentage_improvement(target.mean_flowtime, reference.mean_flowtime)

    def render(self, baseline: Optional[str] = None) -> str:
        """Plain-text table; improvements are shown relative to ``baseline``."""
        lines = [
            f"{'scheduler':<14} {'mean flowtime':>15} {'weighted mean':>15}"
            + ("   vs baseline" if baseline else "")
        ]
        for entry in self.rows:
            line = (
                f"{entry.scheduler:<14} {entry.mean_flowtime:>15.1f} "
                f"{entry.weighted_mean_flowtime:>15.1f}"
            )
            if baseline and entry.scheduler != baseline:
                unweighted = self.improvement_over(entry.scheduler, baseline)
                weighted = self.improvement_over(
                    entry.scheduler, baseline, weighted=True
                )
                line += f"   {unweighted:+5.1f}% / {weighted:+5.1f}%"
            lines.append(line)
        return "\n".join(lines)
